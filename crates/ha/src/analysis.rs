//! Reachability analyses on deterministic hedge automata.
//!
//! * **Inhabited** states: states some hedge can actually reach bottom-up.
//!   Everything else is dead weight introduced by constructions.
//! * **Witnesses**: a concrete hedge per inhabited state (and per accepted
//!   language) — the counterexample generator behind emptiness checks and
//!   schema-transformation tests.
//! * **Useful** states: inhabited states that moreover occur in at least one
//!   *accepting* computation. Section 8 needs exactly this: output schemas
//!   keep "only those marked states from which final state sequences can be
//!   reached".

use std::collections::VecDeque;

use hedgex_hedge::{Hedge, Tree};

use crate::dha::Dha;
use crate::types::{HState, Leaf};

/// Which states are inhabited (reachable bottom-up by some hedge)?
pub fn inhabited(dha: &Dha) -> Vec<bool> {
    let n = dha.num_states() as usize;
    let mut inh = vec![false; n];
    for leaf in dha.leaves() {
        inh[dha.iota(leaf) as usize] = true;
    }
    let symbols: Vec<_> = dha.symbols().collect();
    loop {
        let mut changed = false;
        for &a in &symbols {
            let hf = dha
                .horiz(a)
                .expect("symbols() only yields declared symbols");
            // Horizontal states reachable reading inhabited letters.
            let mut seen = vec![false; hf.num_classes()];
            let mut queue = VecDeque::from([hf.start()]);
            seen[hf.start() as usize] = true;
            while let Some(h) = queue.pop_front() {
                let r = hf.result(h) as usize;
                if !inh[r] {
                    inh[r] = true;
                    changed = true;
                }
                for q in 0..dha.num_states() {
                    if inh[q as usize] {
                        let h2 = hf.step(h, q);
                        if !seen[h2 as usize] {
                            seen[h2 as usize] = true;
                            queue.push_back(h2);
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    inh
}

/// A witness hedge per state: `witnesses(d)[q]` is a hedge whose single
/// top-level tree evaluates to `q` (None for uninhabited states).
///
/// Substitution-symbol leaves may appear bare when `ι` maps them; runs are
/// still well-defined on such hedges.
pub fn witnesses(dha: &Dha) -> Vec<Option<Hedge>> {
    let n = dha.num_states() as usize;
    let mut wit: Vec<Option<Hedge>> = vec![None; n];
    for leaf in dha.leaves() {
        let q = dha.iota(leaf) as usize;
        if wit[q].is_none() {
            let tree = match leaf {
                Leaf::Var(x) => Tree::Var(x),
                Leaf::Sub(z) => Tree::Subst(z),
            };
            wit[q] = Some(Hedge::tree(tree));
        }
    }
    let symbols: Vec<_> = dha.symbols().collect();
    loop {
        let mut changed = false;
        for &a in &symbols {
            let hf = dha.horiz(a).expect("declared");
            // BFS over horizontal states carrying the witness word so far.
            let mut best: Vec<Option<Vec<HState>>> = vec![None; hf.num_classes()];
            let mut queue = VecDeque::from([hf.start()]);
            best[hf.start() as usize] = Some(Vec::new());
            while let Some(h) = queue.pop_front() {
                let word = best[h as usize].clone().expect("enqueued with a word");
                let r = hf.result(h) as usize;
                if wit[r].is_none() {
                    let mut content = Hedge::empty();
                    for &q in &word {
                        content = content.concat(
                            wit[q as usize]
                                .clone()
                                .expect("witness words only use witnessed states"),
                        );
                    }
                    wit[r] = Some(Hedge::node(a, content));
                    changed = true;
                }
                for q in 0..dha.num_states() {
                    if wit[q as usize].is_some() {
                        let h2 = hf.step(h, q);
                        if best[h2 as usize].is_none() {
                            let mut w2 = word.clone();
                            w2.push(q);
                            best[h2 as usize] = Some(w2);
                            queue.push_back(h2);
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    wit
}

/// A hedge accepted by the automaton, if any.
pub fn accepted_witness(dha: &Dha) -> Option<Hedge> {
    let wit = witnesses(dha);
    let f = dha.finals();
    // BFS over F's DFA states, stepping only by witnessed automaton states.
    let mut prev: Vec<Option<(u32, Option<HState>)>> = vec![None; f.num_states()];
    let mut queue = VecDeque::from([f.start()]);
    prev[f.start() as usize] = Some((f.start(), None));
    while let Some(s) = queue.pop_front() {
        if f.is_accepting(s) {
            // Reconstruct the state word, then concatenate witnesses.
            let mut word = Vec::new();
            let mut cur = s;
            loop {
                let (p, q) = prev[cur as usize].expect("visited");
                match q {
                    Some(q) => word.push(q),
                    None => break,
                }
                cur = p;
            }
            word.reverse();
            let mut h = Hedge::empty();
            for q in word {
                h = h.concat(wit[q as usize].clone().expect("witnessed"));
            }
            return Some(h);
        }
        for q in 0..dha.num_states() {
            if wit[q as usize].is_none() {
                continue;
            }
            let t = f.step(s, &q);
            if prev[t as usize].is_none() {
                prev[t as usize] = Some((s, Some(q)));
                queue.push_back(t);
            }
        }
    }
    None
}

/// Is the accepted hedge language empty?
pub fn is_empty(dha: &Dha) -> bool {
    accepted_witness(dha).is_none()
}

/// Which states occur in at least one accepting computation?
///
/// `useful[q]` implies `inhabited[q]`; additionally some accepted hedge's
/// computation assigns `q` to some node.
pub fn useful(dha: &Dha) -> Vec<bool> {
    let n = dha.num_states() as usize;
    let inh = inhabited(dha);
    let mut useful = vec![false; n];

    // Top level: q is useful if F accepts some word ...q... with every
    // letter inhabited. Forward-reachable × can-reach-accept on F's DFA.
    let f = dha.finals();
    let fwd = {
        let mut seen = vec![false; f.num_states()];
        let mut queue = VecDeque::from([f.start()]);
        seen[f.start() as usize] = true;
        while let Some(s) = queue.pop_front() {
            for q in 0..dha.num_states() {
                if inh[q as usize] {
                    let t = f.step(s, &q);
                    if !seen[t as usize] {
                        seen[t as usize] = true;
                        queue.push_back(t);
                    }
                }
            }
        }
        seen
    };
    let back = {
        // Can-reach-accept via inhabited letters: reverse BFS.
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); f.num_states()];
        for s in 0..f.num_states() as u32 {
            for q in 0..dha.num_states() {
                if inh[q as usize] {
                    rev[f.step(s, &q) as usize].push(s);
                }
            }
        }
        let mut seen = vec![false; f.num_states()];
        let mut queue: VecDeque<u32> = (0..f.num_states() as u32)
            .filter(|&s| f.is_accepting(s))
            .collect();
        for &s in &queue {
            seen[s as usize] = true;
        }
        while let Some(s) = queue.pop_front() {
            for &p in &rev[s as usize] {
                if !seen[p as usize] {
                    seen[p as usize] = true;
                    queue.push_back(p);
                }
            }
        }
        seen
    };
    for s in 0..f.num_states() as u32 {
        if !fwd[s as usize] {
            continue;
        }
        for q in 0..dha.num_states() {
            if inh[q as usize] && back[f.step(s, &q) as usize] {
                useful[q as usize] = true;
            }
        }
    }

    // Downward closure: if α(a, …)'s result is useful, every letter of a
    // word reaching an accepting-for-that-result horizontal state is useful.
    let symbols: Vec<_> = dha.symbols().collect();
    loop {
        let mut changed = false;
        for &a in &symbols {
            let hf = dha.horiz(a).expect("declared");
            let m = hf.num_classes();
            // Forward-reachable horizontal states (inhabited letters only).
            let mut fwd_h = vec![false; m];
            let mut queue = VecDeque::from([hf.start()]);
            fwd_h[hf.start() as usize] = true;
            while let Some(h) = queue.pop_front() {
                for q in 0..dha.num_states() {
                    if inh[q as usize] {
                        let h2 = hf.step(h, q);
                        if !fwd_h[h2 as usize] {
                            fwd_h[h2 as usize] = true;
                            queue.push_back(h2);
                        }
                    }
                }
            }
            // Horizontal states from which a useful-result state is
            // reachable (inhabited letters), including themselves.
            let mut back_h = vec![false; m];
            let mut rev: Vec<Vec<u32>> = vec![Vec::new(); m];
            for h in 0..m as u32 {
                for q in 0..dha.num_states() {
                    if inh[q as usize] {
                        rev[hf.step(h, q) as usize].push(h);
                    }
                }
            }
            let mut queue: VecDeque<u32> = (0..m as u32)
                .filter(|&h| useful[hf.result(h) as usize])
                .collect();
            for &h in &queue {
                back_h[h as usize] = true;
            }
            while let Some(h) = queue.pop_front() {
                for &p in &rev[h as usize] {
                    if !back_h[p as usize] {
                        back_h[p as usize] = true;
                        queue.push_back(p);
                    }
                }
            }
            // Every inhabited letter on a fwd→back edge is useful.
            for h in 0..m as u32 {
                if !fwd_h[h as usize] {
                    continue;
                }
                for q in 0..dha.num_states() {
                    if inh[q as usize] && !useful[q as usize] && back_h[hf.step(h, q) as usize] {
                        useful[q as usize] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    useful
}

/// Which NHA states are inhabited (producible at some node by some
/// computation)?
pub fn nha_inhabited(nha: &crate::nha::Nha) -> Vec<bool> {
    let n = nha.num_states() as usize;
    let mut inh = vec![false; n];
    for (_, qs) in nha.iotas() {
        for &q in qs {
            inh[q as usize] = true;
        }
    }
    let symbols: Vec<_> = nha.symbols().collect();
    loop {
        let mut changed = false;
        for &a in &symbols {
            for (dfa, q) in nha.rules(a) {
                if inh[*q as usize] {
                    continue;
                }
                // Does dfa accept some word over inhabited letters?
                let mut seen = vec![false; dfa.num_states()];
                let mut stack = vec![dfa.start()];
                seen[dfa.start() as usize] = true;
                let mut hit = false;
                while let Some(s) = stack.pop() {
                    if dfa.is_accepting(s) {
                        hit = true;
                        break;
                    }
                    for l in 0..nha.num_states() {
                        if inh[l as usize] {
                            let t = dfa.step(s, &l);
                            if !seen[t as usize] {
                                seen[t as usize] = true;
                                stack.push(t);
                            }
                        }
                    }
                }
                if hit {
                    inh[*q as usize] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    inh
}

/// Which NHA states occur in at least one *accepting* computation?
///
/// The Section 8 restriction for output schemas: marked states only count
/// "from which final state sequences can be reached".
pub fn nha_useful(nha: &crate::nha::Nha) -> Vec<bool> {
    let n = nha.num_states() as usize;
    let inh = nha_inhabited(nha);
    let mut useful = vec![false; n];

    // Top level: letters on fwd→back edges of F's NFA (inhabited only).
    let f = nha.finals();
    let fwd = {
        let mut seen = vec![false; f.num_states()];
        let mut stack: Vec<u32> = f.eps_closure(&[f.start()]);
        for &s in &stack {
            seen[s as usize] = true;
        }
        while let Some(s) = stack.pop() {
            for (c, t) in f.transitions(s) {
                if (0..nha.num_states()).any(|q| inh[q as usize] && c.contains(&q)) {
                    for u in f.eps_closure(&[*t]) {
                        if !seen[u as usize] {
                            seen[u as usize] = true;
                            stack.push(u);
                        }
                    }
                }
            }
        }
        seen
    };
    let back = {
        let mut seen = vec![false; f.num_states()];
        let mut stack: Vec<u32> = (0..f.num_states() as u32)
            .filter(|&s| f.is_accepting(s))
            .collect();
        for &s in &stack {
            seen[s as usize] = true;
        }
        // Reverse edges (labelled with an inhabited letter, or ε).
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); f.num_states()];
        for s in 0..f.num_states() as u32 {
            for (c, t) in f.transitions(s) {
                if (0..nha.num_states()).any(|q| inh[q as usize] && c.contains(&q)) {
                    rev[*t as usize].push(s);
                }
            }
            for &t in f.eps_transitions(s) {
                rev[t as usize].push(s);
            }
        }
        while let Some(s) = stack.pop() {
            for &p in &rev[s as usize] {
                if !seen[p as usize] {
                    seen[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        seen
    };
    for s in 0..f.num_states() as u32 {
        if !fwd[s as usize] {
            continue;
        }
        for (c, t) in f.transitions(s) {
            if back[*t as usize] {
                for q in 0..nha.num_states() {
                    if inh[q as usize] && c.contains(&q) {
                        useful[q as usize] = true;
                    }
                }
            }
        }
    }

    // Downward closure through the rules.
    let symbols: Vec<_> = nha.symbols().collect();
    loop {
        let mut changed = false;
        for &a in &symbols {
            for (dfa, r) in nha.rules(a) {
                if !useful[*r as usize] {
                    continue;
                }
                let m = dfa.num_states();
                let mut fwd_d = vec![false; m];
                let mut stack = vec![dfa.start()];
                fwd_d[dfa.start() as usize] = true;
                while let Some(s) = stack.pop() {
                    for q in 0..nha.num_states() {
                        if inh[q as usize] {
                            let t = dfa.step(s, &q);
                            if !fwd_d[t as usize] {
                                fwd_d[t as usize] = true;
                                stack.push(t);
                            }
                        }
                    }
                }
                let mut back_d = vec![false; m];
                let mut rev: Vec<Vec<u32>> = vec![Vec::new(); m];
                for s in 0..m as u32 {
                    for q in 0..nha.num_states() {
                        if inh[q as usize] {
                            rev[dfa.step(s, &q) as usize].push(s);
                        }
                    }
                }
                let mut stack: Vec<u32> = (0..m as u32).filter(|&s| dfa.is_accepting(s)).collect();
                for &s in &stack {
                    back_d[s as usize] = true;
                }
                while let Some(s) = stack.pop() {
                    for &p in &rev[s as usize] {
                        if !back_d[p as usize] {
                            back_d[p as usize] = true;
                            stack.push(p);
                        }
                    }
                }
                for s in 0..m as u32 {
                    if !fwd_d[s as usize] {
                        continue;
                    }
                    for q in 0..nha.num_states() {
                        if inh[q as usize]
                            && !useful[q as usize]
                            && back_d[dfa.step(s, &q) as usize]
                        {
                            useful[q as usize] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    useful
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dha::DhaBuilder;
    use hedgex_automata::Regex;
    use hedgex_hedge::{Alphabet, VarId};

    /// 0 = q_d, 1 = q_p1, 2 = q_p2, 3 = q_x, 4 = q_y, 5 = sink, 6 = orphan.
    fn m0_with_orphan(ab: &mut Alphabet) -> Dha {
        let d = ab.sym("d");
        let p = ab.sym("p");
        let x = ab.var("x");
        let y = ab.var("y");
        let mut b = DhaBuilder::new(7, 5);
        b.leaf(crate::types::Leaf::Var(x), 3)
            .leaf(crate::types::Leaf::Var(y), 4)
            .rule(d, Regex::sym(1).concat(Regex::sym(2).star()), 0)
            .rule(p, Regex::word(&[3]), 1)
            .rule(p, Regex::word(&[4]), 2)
            .finals(Regex::sym(0).star());
        b.build()
    }

    #[test]
    fn inhabited_finds_all_reachable_states() {
        let mut ab = Alphabet::new();
        let m = m0_with_orphan(&mut ab);
        let inh = inhabited(&m);
        // q_d, q_p1, q_p2, q_x, q_y, sink are inhabited; the orphan is not.
        assert_eq!(inh, vec![true, true, true, true, true, true, false]);
    }

    #[test]
    fn witnesses_evaluate_to_their_state() {
        let mut ab = Alphabet::new();
        let m = m0_with_orphan(&mut ab);
        let wit = witnesses(&m);
        for q in 0..m.num_states() {
            match &wit[q as usize] {
                None => assert_eq!(q, 6, "only the orphan lacks a witness"),
                Some(h) => {
                    assert_eq!(h.len(), 1, "witness is a single tree");
                    assert_eq!(m.state_of_tree(&h.0[0]), q);
                }
            }
        }
    }

    #[test]
    fn accepted_witness_is_accepted() {
        let mut ab = Alphabet::new();
        let m = m0_with_orphan(&mut ab);
        let w = accepted_witness(&m).expect("language is non-empty");
        assert!(m.accepts(&w));
        assert!(!is_empty(&m));
    }

    #[test]
    fn empty_language_detected() {
        let mut ab = Alphabet::new();
        let a = ab.sym("a");
        let mut b = DhaBuilder::new(2, 1);
        // F requires state 0, but nothing produces state 0.
        b.rule(a, Regex::sym(0), 1).finals(Regex::sym(0));
        let m = b.build();
        assert!(is_empty(&m));
        assert!(accepted_witness(&m).is_none());
    }

    #[test]
    fn useful_excludes_states_outside_accepting_runs() {
        let mut ab = Alphabet::new();
        let m = m0_with_orphan(&mut ab);
        let u = useful(&m);
        // q_d, q_p1, q_p2, q_x, q_y all occur in accepting runs.
        assert!(u[0] && u[1] && u[2] && u[3] && u[4]);
        // The sink never occurs in an accepting computation: any node
        // assigned the sink poisons its ancestors to the sink, and F = q_d*.
        assert!(!u[5]);
        assert!(!u[6]);
    }

    #[test]
    fn useful_respects_final_restrictions() {
        // F = q_a only (exactly one a-tree, containing one x leaf).
        let mut ab = Alphabet::new();
        let a = ab.sym("a");
        let x = ab.var("x");
        let mut b = DhaBuilder::new(3, 2);
        b.leaf(crate::types::Leaf::Var(x), 1)
            .rule(a, Regex::sym(1), 0)
            .finals(Regex::sym(0));
        let m = b.build();
        let u = useful(&m);
        assert!(u[0]); // q_a at top
        assert!(u[1]); // q_x below a
        assert!(!u[2]); // sink never in an accepting run
    }

    #[test]
    fn witness_of_empty_top_level() {
        // F contains ε: the accepted witness may be the empty hedge.
        let mut ab = Alphabet::new();
        let a = ab.sym("a");
        let mut b = DhaBuilder::new(2, 1);
        b.rule(a, Regex::Epsilon, 0).finals(Regex::sym(0).star());
        let m = b.build();
        let w = accepted_witness(&m).unwrap();
        assert!(m.accepts(&w));
        assert_eq!(w, Hedge::empty());
    }

    #[test]
    fn var_leaf_conversion() {
        let mut ab = Alphabet::new();
        let a = ab.sym("a");
        let x = ab.var("x");
        assert_eq!(VarId(0), x);
        let mut b = DhaBuilder::new(3, 2);
        b.leaf(crate::types::Leaf::Var(x), 0)
            .rule(a, Regex::sym(0), 1)
            .finals(Regex::sym(1));
        let m = b.build();
        let wit = witnesses(&m);
        assert_eq!(wit[0], Some(Hedge::var(x)));
        assert!(m.accepts(&wit[1].clone().unwrap()));
    }
}

//! Minimization of deterministic hedge automata.
//!
//! The constructions of Theorems 3–5 and the products of Section 8 produce
//! automata with many interchangeable states. Two states are
//! *congruent* when exchanging them in any computation never changes
//! acceptance; merging congruent states shrinks every downstream product.
//!
//! The congruence is computed by nested partition refinement:
//!
//! 1. two states must act alike as *letters* of the final state sequence
//!    set `F` (no word context distinguishes them), and
//! 2. for every symbol `a`, they must act alike as letters of `a`'s
//!    horizontal automaton, where horizontal states are themselves
//!    compared by the current partition of their *results* —
//!
//! iterated to a fixpoint, then the automaton is rebuilt over block
//! representatives. This is the unranked analogue of Moore's algorithm;
//! exact minimality is not claimed (state merging by congruence is the
//! useful, safe core), but the result is language-equal by construction
//! and verified by the exact equivalence decision in the tests.

use std::collections::HashMap;

use hedgex_automata::{CharClass, Dfa, StateId};
use hedgex_obs as obs;

use crate::dha::{Dha, HorizFn};
use crate::types::HState;

/// Merge congruent states. Returns the reduced automaton and the map from
/// old states to new ones.
pub fn minimize_dha(dha: &Dha) -> (Dha, Vec<HState>) {
    let _span = obs::span("ha.minimize");
    let n = dha.num_states() as usize;
    let symbols: Vec<_> = {
        let mut v: Vec<_> = dha.symbols().collect();
        v.sort();
        v
    };

    // Letter-equivalence induced by a DFA over Q: q1 ~ q2 iff from every
    // DFA state, stepping by q1 and by q2 lands in language-equal states.
    // `state_blocks` are Moore blocks of the DFA's own states given an
    // output function.
    fn dfa_state_blocks(
        dfa: &Dfa<HState>,
        nq: usize,
        letter_block: &[u32],
        out: &dyn Fn(StateId) -> u32,
    ) -> Vec<u32> {
        let m = dfa.num_states();
        let mut block: Vec<u32> = (0..m as StateId).map(&out).collect();
        canonicalize(&mut block);
        let _ = letter_block; // soundness: refine against *all* letters
        loop {
            let mut sig_ids: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
            let mut next = vec![0u32; m];
            for s in 0..m as StateId {
                let sig: Vec<u32> = (0..nq as HState)
                    .map(|q| block[dfa.step(s, &q) as usize])
                    .collect();
                let key = (block[s as usize], sig);
                let fresh = sig_ids.len() as u32;
                next[s as usize] = *sig_ids.entry(key).or_insert(fresh);
            }
            canonicalize(&mut next);
            if next == block {
                return block;
            }
            block = next;
        }
    }

    fn canonicalize(v: &mut [u32]) {
        let mut map: HashMap<u32, u32> = HashMap::new();
        for x in v.iter_mut() {
            let fresh = map.len() as u32;
            *x = *map.entry(*x).or_insert(fresh);
        }
    }

    // Initial partition: everything together; refine until stable.
    let mut letter_block = vec![0u32; n];
    let mut rounds = 0u64;
    loop {
        rounds += 1;
        let mut sigs: Vec<Vec<u32>> = vec![Vec::new(); n];

        // 1. Behaviour as letters of F.
        let f = dha.finals();
        let fb = dfa_state_blocks(f, n, &letter_block, &|s| u32::from(f.is_accepting(s)));
        for q in 0..n {
            for s in 0..f.num_states() as StateId {
                sigs[q].push(fb[f.step(s, &(q as HState)) as usize]);
            }
        }

        // 2. Behaviour as letters of each horizontal automaton, where
        // horizontal states are compared by (result block, successors).
        for &a in &symbols {
            let hf = dha.horiz(a).expect("declared");
            let hdfa = horiz_as_dfa(hf, n);
            let hb = dfa_state_blocks(&hdfa, n, &letter_block, &|h| {
                letter_block[hf.result(h) as usize]
            });
            for q in 0..n {
                for h in 0..hf.num_classes() as u32 {
                    sigs[q].push(hb[hf.step(h, q as HState) as usize]);
                }
            }
        }

        // Split blocks by signature.
        let mut ids: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
        let mut next = vec![0u32; n];
        for q in 0..n {
            let key = (letter_block[q], std::mem::take(&mut sigs[q]));
            let fresh = ids.len() as u32;
            next[q] = *ids.entry(key).or_insert(fresh);
        }
        canonicalize(&mut next);
        if next == letter_block {
            break;
        }
        letter_block = next;
    }

    let out = rebuild(dha, &letter_block, &symbols);
    obs::counter_inc("ha.minimize.calls");
    obs::counter_add("ha.minimize.states_in", n as u64);
    obs::counter_add("ha.minimize.states_out", u64::from(out.0.num_states()));
    obs::counter_add("ha.minimize.rounds", rounds);
    obs::event("ha.minimize", || {
        format!(
            "states_in={n} states_out={} rounds={rounds}",
            out.0.num_states()
        )
    });
    out
}

/// Reconstruct a symbolic DFA view of a horizontal function so the shared
/// refinement code can walk it.
fn horiz_as_dfa(hf: &HorizFn, nq: usize) -> Dfa<HState> {
    // `inverse` against an arbitrary result gives the right transition
    // structure; acceptance is unused by the refinement.
    let _ = nq;
    hf.inverse(u32::MAX)
}

fn rebuild(dha: &Dha, block: &[u32], symbols: &[hedgex_hedge::SymId]) -> (Dha, Vec<HState>) {
    let nblocks = block.iter().copied().max().map_or(0, |m| m as usize + 1);
    let map: Vec<HState> = block.iter().map(|&b| b as HState).collect();

    let mut iota = HashMap::new();
    for leaf in dha.leaves() {
        iota.insert(leaf, map[dha.iota(leaf) as usize]);
    }
    let sink = map[dha.sink() as usize];

    // Horizontal tables: relabel letters and results by block; keep the
    // horizontal state space (it collapses on its own inside the dense
    // table when blocks coincide — cheap and correct).
    let mut horiz = HashMap::new();
    for &a in symbols {
        let hf = dha.horiz(a).expect("declared");
        let m = hf.num_classes();
        let mut trans: Vec<Vec<(CharClass<HState>, StateId)>> = Vec::with_capacity(m);
        for h in 0..m as u32 {
            // For each new letter (block), step by any representative.
            let mut by_target: std::collections::BTreeMap<StateId, Vec<HState>> =
                std::collections::BTreeMap::new();
            let mut rep_of_block: HashMap<u32, HState> = HashMap::new();
            for q in 0..dha.num_states() {
                rep_of_block.entry(block[q as usize]).or_insert(q);
            }
            for (&b, &q) in &rep_of_block {
                by_target
                    .entry(hf.step(h, q))
                    .or_default()
                    .push(b as HState);
            }
            let mut edges: Vec<(CharClass<HState>, StateId)> = Vec::new();
            let mut covered: std::collections::BTreeSet<HState> = std::collections::BTreeSet::new();
            for (t, letters) in by_target {
                covered.extend(letters.iter().copied());
                edges.push((CharClass::of(letters), t));
            }
            edges.push((CharClass::NotIn(covered), hf.step(h, u32::MAX)));
            trans.push(edges);
        }
        let labels: Vec<HState> = (0..m as u32).map(|h| map[hf.result(h) as usize]).collect();
        let dfa = Dfa::from_parts(trans, hf.start(), vec![false; m]);
        horiz.insert(a, HorizFn::from_labeled_dfa(&dfa, &labels, nblocks as u32));
    }

    // F: relabel letters by block (congruence makes this well-defined).
    let f = dha.finals();
    let mut rep_of_block: HashMap<u32, HState> = HashMap::new();
    for q in 0..dha.num_states() {
        rep_of_block.entry(block[q as usize]).or_insert(q);
    }
    let mut ftrans: Vec<Vec<(CharClass<HState>, StateId)>> = Vec::with_capacity(f.num_states());
    for s in 0..f.num_states() as StateId {
        let mut by_target: std::collections::BTreeMap<StateId, Vec<HState>> =
            std::collections::BTreeMap::new();
        for (&b, &q) in &rep_of_block {
            by_target
                .entry(f.step(s, &q))
                .or_default()
                .push(b as HState);
        }
        let mut edges: Vec<(CharClass<HState>, StateId)> = Vec::new();
        let mut covered: std::collections::BTreeSet<HState> = std::collections::BTreeSet::new();
        for (t, letters) in by_target {
            covered.extend(letters.iter().copied());
            edges.push((CharClass::of(letters), t));
        }
        edges.push((CharClass::NotIn(covered), f.step_cofinite(s)));
        ftrans.push(edges);
    }
    let finals = Dfa::from_parts(
        ftrans,
        f.start(),
        (0..f.num_states() as StateId)
            .map(|s| f.is_accepting(s))
            .collect(),
    );

    (
        Dha::from_parts(nblocks as u32, sink, iota, horiz, finals),
        map,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dha::DhaBuilder;
    use crate::ops::equivalent;
    use crate::paper::m0;
    use crate::types::Leaf;
    use hedgex_automata::Regex;
    use hedgex_hedge::Alphabet;

    #[test]
    fn merges_duplicate_states() {
        let mut ab = Alphabet::new();
        let a = ab.sym("a");
        let b = ab.sym("b");
        let x = ab.var("x");
        let y = ab.var("y");
        // States 0 and 1 are duplicates (two vars, interchangeable roles).
        let mut d = DhaBuilder::new(4, 3);
        d.leaf(Leaf::Var(x), 0)
            .leaf(Leaf::Var(y), 1)
            .rule(a, Regex::sym(0).alt(Regex::sym(1)).star(), 2)
            .rule(b, Regex::sym(0).alt(Regex::sym(1)).star(), 2)
            .finals(Regex::sym(2).star());
        let m = d.build();
        let (min, map) = minimize_dha(&m);
        assert!(min.num_states() < m.num_states());
        assert_eq!(map[0], map[1], "the two leaf states merge");
        assert!(equivalent(&m, &min).is_ok());
    }

    #[test]
    fn preserves_language_on_paper_automaton() {
        let mut ab = Alphabet::new();
        let m = m0(&mut ab);
        let (min, _) = minimize_dha(&m);
        assert!(min.num_states() <= m.num_states());
        assert!(equivalent(&m, &min).is_ok());
    }

    #[test]
    fn idempotent() {
        let mut ab = Alphabet::new();
        let m = m0(&mut ab);
        let (min1, _) = minimize_dha(&m);
        let (min2, _) = minimize_dha(&min1);
        assert_eq!(min1.num_states(), min2.num_states());
        assert!(equivalent(&min1, &min2).is_ok());
    }

    #[test]
    fn does_not_merge_distinguishable_states() {
        let mut ab = Alphabet::new();
        let a = ab.sym("a");
        let x = ab.var("x");
        let y = ab.var("y");
        // F = q_x q_y: order matters, so the two leaf states must not merge.
        let mut d = DhaBuilder::new(3, 2);
        d.leaf(Leaf::Var(x), 0)
            .leaf(Leaf::Var(y), 1)
            .rule(a, Regex::Epsilon, 2) // a maps to sink (filler rule)
            .finals(Regex::sym(0).concat(Regex::sym(1)));
        let m = d.build();
        let (min, map) = minimize_dha(&m);
        assert_ne!(map[0], map[1]);
        assert!(equivalent(&m, &min).is_ok());
    }

    #[test]
    fn shrinks_marking_products() {
        // A product-heavy automaton from the core pipeline shrinks.
        let mut ab = Alphabet::new();
        let m = m0(&mut ab);
        let prod = crate::product::product_many(&[&m, &m, &m]);
        let with_f = prod.dha.with_finals(prod.lifted_finals[0].clone());
        let (min, _) = minimize_dha(&with_f);
        assert!(min.num_states() <= with_f.num_states());
        assert!(equivalent(&with_f, &min).is_ok());
    }
}

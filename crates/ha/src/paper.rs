//! The paper's worked examples (Section 3), packaged for reuse by tests,
//! examples, and benchmarks.

use hedgex_automata::Regex;
use hedgex_hedge::Alphabet;

use crate::dha::{Dha, DhaBuilder};
use crate::nha::{Nha, NhaBuilder};
use crate::types::Leaf;

/// State names of [`m0`], in id order.
pub const M0_STATES: [&str; 6] = ["q_d", "q_p1", "q_p2", "q_x", "q_y", "q_0"];

/// The deterministic hedge automaton `M₀` of Section 3.
///
/// Accepts any sequence of trees `d⟨p⟨x⟩ p⟨y⟩…p⟨y⟩⟩`:
/// `α(d, u) = q_d` iff `u ∈ L(q_p1 q_p2*)`, `α(p, q_x) = q_p1`,
/// `α(p, q_y) = q_p2`, `F = L(q_d*)`. Interns `d`, `p`, `x`, `y` into `ab`.
pub fn m0(ab: &mut Alphabet) -> Dha {
    let d = ab.sym("d");
    let p = ab.sym("p");
    let x = ab.var("x");
    let y = ab.var("y");
    let mut b = DhaBuilder::new(6, 5);
    b.leaf(Leaf::Var(x), 3)
        .leaf(Leaf::Var(y), 4)
        .rule(d, Regex::sym(1).concat(Regex::sym(2).star()), 0)
        .rule(p, Regex::word(&[3]), 1)
        .rule(p, Regex::word(&[4]), 2)
        .finals(Regex::sym(0).star());
    b.build()
}

/// State names of [`m1`], in id order.
pub const M1_STATES: [&str; 4] = ["q_d", "q_p1", "q_p2", "q_x"];

/// The non-deterministic hedge automaton `M₁` of Section 3.
///
/// `ι(x) = {q_x}`, `ι(y) = ∅`, `α(d, u) = {q_d}` iff `u ∈ L(q_p1 q_p2*)`,
/// `α(p, q_x q_x) = {q_p1, q_p2}`, `α(p, q_x) = {q_p1}`, `F = L(q_d*)`.
///
/// (The paper's displayed `F₀ = L(q_x*)` is an evident typo for `L(q_d*)`:
/// its example executions produce ceils `q_d`, which it declares accepted.)
pub fn m1(ab: &mut Alphabet) -> Nha {
    let d = ab.sym("d");
    let p = ab.sym("p");
    let x = ab.var("x");
    ab.var("y");
    let mut b = NhaBuilder::new(4);
    b.leaf(Leaf::Var(x), 3)
        .rule(d, Regex::sym(1).concat(Regex::sym(2).star()), 0)
        .rule(p, Regex::word(&[3, 3]), 1)
        .rule(p, Regex::word(&[3, 3]), 2)
        .rule(p, Regex::word(&[3]), 1)
        .finals(Regex::sym(0).star());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hedgex_hedge::parse_hedge;

    #[test]
    fn m0_section_3_walkthrough() {
        let mut ab = Alphabet::new();
        let m = m0(&mut ab);
        let h = parse_hedge("d<p<$x> p<$y>> d<p<$x>>", &mut ab).unwrap();
        assert!(m.accepts(&h));
    }

    #[test]
    fn m1_section_3_walkthrough() {
        let mut ab = Alphabet::new();
        let m = m1(&mut ab);
        assert!(!m.accepts(&parse_hedge("d<p<$x> p<$y>>", &mut ab).unwrap()));
        assert!(m.accepts(&parse_hedge("d<p<$x $x> p<$x $x>>", &mut ab).unwrap()));
    }
}

//! Deterministic hedge automata (Definitions 3–5).
//!
//! `α` is represented per symbol as a [`HorizFn`]: a single product DFA over
//! the state alphabet `Q` (built with [`SaturatingClasses`]) whose
//! product-states each carry the result state `α(a, w)`. This keeps `α`
//! total — every word over `Q` lands in exactly one product state — and
//! makes a run linear in the number of nodes: one table step per child edge.

use std::collections::HashMap;

use hedgex_automata::{DenseDfa, Dfa, Nfa, Regex, SaturatingClasses};
use hedgex_hedge::{FlatHedge, Hedge, SubId, SymId, Tree};

use crate::types::{HState, Leaf};

/// The horizontal transition function of one symbol: `w ↦ α(a, w)`.
///
/// A dense table: horizontal states × (state alphabet + one "fresh symbol"
/// column), each horizontal state labelled with the result `α(a, w)`.
#[derive(Debug, Clone)]
pub struct HorizFn {
    /// Size of the state alphabet `|Q|`.
    nsyms: usize,
    /// `table[h * (nsyms + 1) + q]`; column `nsyms` handles out-of-range
    /// child states (only reachable through malformed input).
    table: Vec<u32>,
    /// Result state per horizontal state.
    result: Vec<HState>,
    start: u32,
}

impl HorizFn {
    /// Build from prioritized rules `(L_j, q_j)`: a word `w` maps to the
    /// `q_j` of the first `L_j` containing it, or to `sink`.
    ///
    /// First-match-wins keeps `α` a *function* even when rule languages
    /// overlap; a well-formed deterministic automaton has disjoint rule
    /// languages anyway, and then the priority is irrelevant.
    pub fn from_rules(rules: &[(Dfa<HState>, HState)], num_states: u32, sink: HState) -> HorizFn {
        let alphabet: Vec<HState> = (0..num_states).collect();
        let dfas: Vec<Dfa<HState>> = rules.iter().map(|(d, _)| d.clone()).collect();
        let classes = SaturatingClasses::build(&dfas, &alphabet);
        let nclasses = classes.num_classes();
        let result: Vec<HState> = (0..nclasses as u32)
            .map(|c| {
                rules
                    .iter()
                    .enumerate()
                    .find(|(j, _)| classes.class_in_lang(c, *j))
                    .map(|(_, (_, q))| *q)
                    .unwrap_or(sink)
            })
            .collect();
        let nsyms = num_states as usize;
        let mut table = vec![0u32; nclasses * (nsyms + 1)];
        for h in 0..nclasses as u32 {
            for q in 0..num_states {
                table[h as usize * (nsyms + 1) + q as usize] = classes.step(h, &q);
            }
            // Out-of-range child states behave like a fresh symbol.
            table[h as usize * (nsyms + 1) + nsyms] = classes.step(h, &u32::MAX);
        }
        HorizFn {
            nsyms,
            table,
            result,
            start: classes.start(),
        }
    }

    /// Build from an explicit DFA over the state alphabet together with one
    /// result per DFA state (used by determinization and products, whose
    /// horizontal automata are constructed directly).
    pub fn from_labeled_dfa(dfa: &Dfa<HState>, labels: &[HState], num_states: u32) -> HorizFn {
        assert_eq!(dfa.num_states(), labels.len());
        let nsyms = num_states as usize;
        let n = dfa.num_states();
        let mut table = vec![0u32; n * (nsyms + 1)];
        for h in 0..n as u32 {
            for q in 0..num_states {
                table[h as usize * (nsyms + 1) + q as usize] = dfa.step(h, &q);
            }
            table[h as usize * (nsyms + 1) + nsyms] = dfa.step_cofinite(h);
        }
        HorizFn {
            nsyms,
            table,
            result: labels.to_vec(),
            start: dfa.start(),
        }
    }

    /// The horizontal state for the empty child sequence.
    #[inline]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Extend a horizontal state by one child state.
    #[inline]
    pub fn step(&self, h: u32, q: HState) -> u32 {
        let col = (q as usize).min(self.nsyms);
        self.table[h as usize * (self.nsyms + 1) + col]
    }

    /// The result `α(a, w)` at horizontal state `h`.
    #[inline]
    pub fn result(&self, h: u32) -> HState {
        self.result[h as usize]
    }

    /// Evaluate `α(a, w)` for a whole child-state word.
    pub fn eval(&self, word: impl IntoIterator<Item = HState>) -> HState {
        let mut h = self.start();
        for q in word {
            h = self.step(h, q);
        }
        self.result(h)
    }

    /// Number of horizontal states (used by size metrics in the benches).
    pub fn num_classes(&self) -> usize {
        self.result.len()
    }

    /// The inverse image `α⁻¹(a, q)` as a total symbolic DFA over the state
    /// alphabet: accepts exactly the words `w` with `α(a, w) = q`.
    pub fn inverse(&self, q: HState) -> Dfa<HState> {
        use hedgex_automata::CharClass;
        let n = self.num_classes();
        let mut trans = Vec::with_capacity(n);
        for h in 0..n as u32 {
            let mut by_target: std::collections::BTreeMap<u32, Vec<HState>> =
                std::collections::BTreeMap::new();
            for s in 0..self.nsyms as HState {
                by_target.entry(self.step(h, s)).or_default().push(s);
            }
            let cof = self.table[h as usize * (self.nsyms + 1) + self.nsyms];
            let mut edges: Vec<(CharClass<HState>, hedgex_automata::StateId)> = Vec::new();
            let mut covered: std::collections::BTreeSet<HState> = std::collections::BTreeSet::new();
            for (tgt, syms) in by_target {
                if tgt == cof {
                    continue; // folded into the co-finite edge
                }
                covered.extend(syms.iter().copied());
                edges.push((CharClass::of(syms), tgt));
            }
            edges.push((CharClass::NotIn(covered), cof));
            trans.push(edges);
        }
        let accept: Vec<bool> = self.result.iter().map(|&r| r == q).collect();
        Dfa::from_parts(trans, self.start, accept)
    }
}

/// Reusable buffers for [`Dha::run_into`]: one state slot per node,
/// allocated once and recycled across runs so warm evaluation performs no
/// heap allocation per node (growth is amortized across documents).
#[derive(Debug, Default)]
pub struct EvalScratch {
    states: Vec<HState>,
}

impl EvalScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> EvalScratch {
        EvalScratch::default()
    }

    /// Pre-size for documents of up to `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> EvalScratch {
        EvalScratch {
            states: Vec::with_capacity(nodes),
        }
    }

    /// The states written by the most recent [`Dha::run_into`].
    pub fn states(&self) -> &[HState] {
        &self.states
    }
}

/// A deterministic hedge automaton `(Σ, X, Q, ι, α, F)`.
///
/// Dispatch is **dense**: `α` is a `SymId`-indexed table of [`HorizFn`]s and
/// `ι` a pair of `VarId`/`SubId`-indexed state tables (the interned alphabet
/// hands out dense `u32` ids, so tables are sized up front from the largest
/// declared id — see `hedgex_hedge::Alphabet::sizes`). The per-node
/// execution loop therefore performs no hashing: every lookup is a bounds
/// check plus an array index, and out-of-range ids take the sink, exactly
/// like the previous `HashMap` miss path.
#[derive(Debug, Clone)]
pub struct Dha {
    num_states: u32,
    sink: HState,
    /// `ι` over variable leaves, indexed by `VarId`; out-of-range → sink.
    iota_var: Vec<HState>,
    /// `ι` over substitution-symbol leaves, indexed by `SubId`.
    iota_sub: Vec<HState>,
    /// `ι(η)` — the reserved `SubId::ETA` is `u32::MAX` and stays out of
    /// the dense table.
    iota_eta: HState,
    /// The declared leaf set, sorted (the dense tables cannot distinguish
    /// "undeclared" from "declared = sink").
    declared_leaves: Vec<Leaf>,
    /// `α` dispatch, indexed by `SymId`; `None` for undeclared symbols.
    horiz: Vec<Option<HorizFn>>,
    /// The declared symbol set, sorted.
    declared_syms: Vec<SymId>,
    finals: Dfa<HState>,
    /// `F` compiled against the concrete state alphabet `0..|Q|`: the
    /// executor backend for acceptance (the symbolic [`Dfa`] is kept for
    /// constructions that rewrite `F`).
    finals_dense: DenseDfa<HState>,
}

impl Dha {
    /// Number of states `|Q|`.
    pub fn num_states(&self) -> u32 {
        self.num_states
    }

    /// The sink state (assigned when no rule matches).
    pub fn sink(&self) -> HState {
        self.sink
    }

    /// `ι` on a leaf label (sink when undefined).
    #[inline]
    pub fn iota(&self, leaf: Leaf) -> HState {
        match leaf {
            Leaf::Var(x) => self
                .iota_var
                .get(x.0 as usize)
                .copied()
                .unwrap_or(self.sink),
            Leaf::Sub(SubId::ETA) => self.iota_eta,
            Leaf::Sub(z) => self
                .iota_sub
                .get(z.0 as usize)
                .copied()
                .unwrap_or(self.sink),
        }
    }

    /// The horizontal function of a symbol, if any rules were declared.
    #[inline]
    pub fn horiz(&self, a: SymId) -> Option<&HorizFn> {
        self.horiz.get(a.0 as usize).and_then(Option::as_ref)
    }

    /// The final state sequence set `F` as a DFA over `Q`.
    pub fn finals(&self) -> &Dfa<HState> {
        &self.finals
    }

    /// `F` compiled against the concrete state alphabet `0..|Q|` — the
    /// executor form. Because the alphabet is the identity, a state doubles
    /// as its own column index: step with `step_idx(s, q as usize)`.
    pub fn finals_dense(&self) -> &DenseDfa<HState> {
        &self.finals_dense
    }

    /// All symbols with declared horizontal rules, in id order.
    pub fn symbols(&self) -> impl Iterator<Item = SymId> + '_ {
        self.declared_syms.iter().copied()
    }

    /// All leaf labels with a declared `ι` value, in sorted order.
    pub fn leaves(&self) -> impl Iterator<Item = Leaf> + '_ {
        self.declared_leaves.iter().copied()
    }

    /// Replace the final state sequence set (used when deriving automata
    /// that share `(Q, ι, α)` but differ in `F`, as in Theorem 4).
    pub fn with_finals(mut self, finals: Dfa<HState>) -> Dha {
        let alphabet: Vec<HState> = (0..self.num_states).collect();
        self.finals_dense = DenseDfa::compile(&finals, &alphabet);
        self.finals = finals;
        self
    }

    /// `α(a, w)` for an explicit word (sink for undeclared symbols).
    pub fn alpha(&self, a: SymId, word: &[HState]) -> HState {
        match self.horiz(a) {
            Some(h) => h.eval(word.iter().copied()),
            None => self.sink,
        }
    }

    /// The computation `M‖u`, written into caller-owned buffers: the state
    /// of every node, indexed by [`hedgex_hedge::NodeId`]. Linear in the
    /// number of nodes (Definition 4 evaluated bottom-up), and — past the
    /// first run on the largest document — allocation-free.
    pub fn run_into<'s>(&self, h: &FlatHedge, scratch: &'s mut EvalScratch) -> &'s [HState] {
        self.run_core(h, &mut scratch.states);
        &scratch.states
    }

    /// The computation `M‖u` as a fresh vector (see [`Dha::run_into`] for
    /// the reusable-buffer variant).
    pub fn run(&self, h: &FlatHedge) -> Vec<HState> {
        let mut states = Vec::new();
        self.run_core(h, &mut states);
        states
    }

    fn run_core(&self, h: &FlatHedge, states: &mut Vec<HState>) {
        use hedgex_hedge::flat::FlatLabel;
        let n = h.num_nodes();
        // One bulk add per run keeps the per-node loop untouched.
        hedgex_obs::counter_add("ha.dha.run_nodes", n as u64);
        hedgex_obs::counter_inc("ha.dha.runs");
        states.clear();
        states.resize(n, self.sink);
        // Preorder ids: children have larger ids than their parent, so a
        // reverse scan sees every child before its parent.
        for id in (0..n as u32).rev() {
            match h.label(id) {
                FlatLabel::Var(x) => states[id as usize] = self.iota(Leaf::Var(x)),
                FlatLabel::Subst(z) => states[id as usize] = self.iota(Leaf::Sub(z)),
                FlatLabel::Sym(a) => {
                    states[id as usize] = match self.horiz(a) {
                        None => self.sink,
                        Some(hf) => {
                            let mut hs = hf.start();
                            let mut c = h.first_child(id);
                            while let Some(cid) = c {
                                hs = hf.step(hs, states[cid as usize]);
                                c = h.next_sibling(cid);
                            }
                            hf.result(hs)
                        }
                    };
                }
            }
        }
    }

    /// The ceil of the computation: states of the top-level nodes.
    pub fn run_ceil(&self, h: &FlatHedge) -> Vec<HState> {
        let states = self.run(h);
        h.roots().iter().map(|&r| states[r as usize]).collect()
    }

    /// Acceptance (Definition 5): is `⌈M‖u⌉ ∈ F`? Steps the dense-compiled
    /// `F` directly over the root states — no intermediate ceil vector.
    pub fn accepts_flat(&self, h: &FlatHedge) -> bool {
        let states = self.run(h);
        let mut q = self.finals_dense.start();
        for &r in h.roots() {
            // Root states are always < |Q|, and the dense alphabet is the
            // identity 0..|Q|, so the state doubles as its column index.
            q = self.finals_dense.step_idx(q, states[r as usize] as usize);
        }
        self.finals_dense.is_accepting(q)
    }

    /// Acceptance on a recursive hedge.
    pub fn accepts(&self, h: &Hedge) -> bool {
        self.accepts_flat(&FlatHedge::from_hedge(h))
    }

    /// The state of a single recursive tree (bottom-up, recursion-free).
    pub fn state_of_tree(&self, t: &Tree) -> HState {
        match t {
            Tree::Var(x) => self.iota(Leaf::Var(*x)),
            Tree::Subst(z) => self.iota(Leaf::Sub(*z)),
            Tree::Node(a, children) => {
                let word: Vec<HState> = children.trees().map(|c| self.state_of_tree(c)).collect();
                self.alpha(*a, &word)
            }
        }
    }

    /// Build directly from parts (used by determinization, products, and
    /// the marking constructions of Theorems 3 and 5). Construction sites
    /// hand over sparse maps; the dense dispatch tables are laid out here,
    /// once, sized by the largest declared id.
    pub fn from_parts(
        num_states: u32,
        sink: HState,
        iota: HashMap<Leaf, HState>,
        horiz: HashMap<SymId, HorizFn>,
        finals: Dfa<HState>,
    ) -> Dha {
        let mut iota_var = Vec::new();
        let mut iota_sub = Vec::new();
        let mut iota_eta = sink;
        let mut declared_leaves: Vec<Leaf> = iota.keys().copied().collect();
        declared_leaves.sort_unstable();
        for (leaf, q) in iota {
            match leaf {
                Leaf::Var(x) => {
                    let i = x.0 as usize;
                    if iota_var.len() <= i {
                        iota_var.resize(i + 1, sink);
                    }
                    iota_var[i] = q;
                }
                Leaf::Sub(SubId::ETA) => iota_eta = q,
                Leaf::Sub(z) => {
                    let i = z.0 as usize;
                    if iota_sub.len() <= i {
                        iota_sub.resize(i + 1, sink);
                    }
                    iota_sub[i] = q;
                }
            }
        }
        let mut declared_syms: Vec<SymId> = horiz.keys().copied().collect();
        declared_syms.sort_unstable();
        let width = declared_syms.last().map_or(0, |a| a.0 as usize + 1);
        let mut horiz_dense: Vec<Option<HorizFn>> = Vec::with_capacity(width);
        horiz_dense.resize_with(width, || None);
        for (a, hf) in horiz {
            horiz_dense[a.0 as usize] = Some(hf);
        }
        let alphabet: Vec<HState> = (0..num_states).collect();
        let finals_dense = DenseDfa::compile(&finals, &alphabet);
        Dha {
            num_states,
            sink,
            iota_var,
            iota_sub,
            iota_eta,
            declared_leaves,
            horiz: horiz_dense,
            declared_syms,
            finals,
            finals_dense,
        }
    }
}

/// Incremental construction of a [`Dha`] from regular-expression rules.
#[derive(Debug)]
pub struct DhaBuilder {
    num_states: u32,
    sink: HState,
    iota: HashMap<Leaf, HState>,
    rules: HashMap<SymId, Vec<(Dfa<HState>, HState)>>,
    finals: Option<Dfa<HState>>,
}

impl DhaBuilder {
    /// Start a builder with `num_states` states, one of which is the sink.
    pub fn new(num_states: u32, sink: HState) -> DhaBuilder {
        assert!(sink < num_states, "sink must be a state");
        DhaBuilder {
            num_states,
            sink,
            iota: HashMap::new(),
            rules: HashMap::new(),
            finals: None,
        }
    }

    /// Declare `ι(leaf) = q`.
    pub fn leaf(&mut self, leaf: impl Into<Leaf>, q: HState) -> &mut Self {
        assert!(q < self.num_states);
        self.iota.insert(leaf.into(), q);
        self
    }

    /// Declare `α(a, w) = q` for all `w ∈ L(re)` (first matching rule wins).
    pub fn rule(&mut self, a: SymId, re: Regex<HState>, q: HState) -> &mut Self {
        assert!(q < self.num_states);
        let dfa = Nfa::from_regex(&re).to_dfa();
        self.rules.entry(a).or_default().push((dfa, q));
        self
    }

    /// Declare the final state sequence set `F = L(re)`.
    pub fn finals(&mut self, re: Regex<HState>) -> &mut Self {
        self.finals = Some(Nfa::from_regex(&re).to_dfa());
        self
    }

    /// Compile the horizontal functions and assemble the automaton.
    pub fn build(self) -> Dha {
        let horiz = self
            .rules
            .into_iter()
            .map(|(a, rules)| (a, HorizFn::from_rules(&rules, self.num_states, self.sink)))
            .collect();
        Dha::from_parts(
            self.num_states,
            self.sink,
            self.iota,
            horiz,
            self.finals
                .unwrap_or_else(|| Nfa::from_regex(&Regex::Empty).to_dfa()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hedgex_hedge::{parse_hedge, Alphabet};

    /// The paper's M₀ (Section 3): accepts any sequence of trees
    /// d⟨p⟨x⟩ p⟨y⟩*⟩ — a `d` whose children are a `p⟨x⟩` followed by any
    /// number of `p⟨y⟩`.
    fn m0(ab: &mut Alphabet) -> Dha {
        let d = ab.sym("d");
        let p = ab.sym("p");
        let x = ab.var("x");
        let y = ab.var("y");
        // States: 0=q_d, 1=q_p1, 2=q_p2, 3=q_x, 4=q_y, 5=q_0 (sink).
        let mut b = DhaBuilder::new(6, 5);
        b.leaf(Leaf::Var(x), 3)
            .leaf(Leaf::Var(y), 4)
            .rule(d, Regex::sym(1).concat(Regex::sym(2).star()), 0)
            .rule(p, Regex::word(&[3]), 1)
            .rule(p, Regex::word(&[4]), 2)
            .finals(Regex::sym(0).star());
        b.build()
    }

    #[test]
    fn m0_accepts_paper_example() {
        let mut ab = Alphabet::new();
        let m = m0(&mut ab);
        // d⟨p⟨x⟩ p⟨y⟩⟩ d⟨p⟨x⟩⟩ is accepted: computation ceil q_d q_d ∈ F.
        let h = parse_hedge("d<p<$x> p<$y>> d<p<$x>>", &mut ab).unwrap();
        assert!(m.accepts(&h));
    }

    #[test]
    fn m0_computation_matches_paper() {
        let mut ab = Alphabet::new();
        let m = m0(&mut ab);
        let h = parse_hedge("d<p<$x> p<$y>> d<p<$x>>", &mut ab).unwrap();
        let f = FlatHedge::from_hedge(&h);
        let states = m.run(&f);
        // Computation: q_d⟨q_p1⟨q_x⟩ q_p2⟨q_y⟩⟩ q_d⟨q_p1⟨q_x⟩⟩.
        assert_eq!(states, vec![0, 1, 3, 2, 4, 0, 1, 3]);
        assert_eq!(m.run_ceil(&f), vec![0, 0]);
    }

    #[test]
    fn m0_rejects_wrong_shapes() {
        let mut ab = Alphabet::new();
        let m = m0(&mut ab);
        for bad in [
            "d<p<$y>>",       // first child must be p⟨x⟩
            "d<p<$x> p<$x>>", // later children must be p⟨y⟩
            "p<$x>",          // top level must be d's
            "d<p<$x>> p<$y>", // mixed top level
            "d",              // d with no children
            "d<p<$x $x>>",    // p with two leaves
        ] {
            let h = parse_hedge(bad, &mut ab).unwrap();
            assert!(!m.accepts(&h), "should reject {bad}");
        }
        // ε: F = q_d* contains the empty sequence.
        assert!(m.accepts(&parse_hedge("", &mut ab).unwrap()));
    }

    #[test]
    fn unknown_symbols_and_vars_go_to_sink() {
        let mut ab = Alphabet::new();
        let m = m0(&mut ab);
        let h = parse_hedge("q<$w>", &mut ab).unwrap();
        assert!(!m.accepts(&h));
        let f = FlatHedge::from_hedge(&h);
        assert_eq!(m.run(&f), vec![5, 5]);
    }

    #[test]
    fn state_of_tree_agrees_with_run() {
        let mut ab = Alphabet::new();
        let m = m0(&mut ab);
        let h = parse_hedge("d<p<$x> p<$y> p<$y>>", &mut ab).unwrap();
        let f = FlatHedge::from_hedge(&h);
        let states = m.run(&f);
        for (i, t) in h.trees().enumerate() {
            assert_eq!(m.state_of_tree(t), states[f.roots()[i] as usize]);
        }
    }

    #[test]
    fn first_match_wins_on_overlapping_rules() {
        let mut ab = Alphabet::new();
        let a = ab.sym("a");
        let mut b = DhaBuilder::new(3, 2);
        // Both rules match ε; the first one should win.
        b.rule(a, Regex::Epsilon, 0)
            .rule(a, Regex::Epsilon, 1)
            .finals(Regex::sym(0));
        let m = b.build();
        let h = parse_hedge("a", &mut ab).unwrap();
        assert!(m.accepts(&h));
    }

    #[test]
    fn horiz_fn_eval_matches_step_chain() {
        let mut ab = Alphabet::new();
        let m = m0(&mut ab);
        let p = ab.get_sym("p").unwrap();
        let hf = m.horiz(p).unwrap();
        assert_eq!(hf.eval([3]), 1);
        assert_eq!(hf.eval([4]), 2);
        assert_eq!(hf.eval([3, 3]), 5);
        assert_eq!(hf.eval([]), 5);
        let mut h = hf.start();
        h = hf.step(h, 3);
        assert_eq!(hf.result(h), 1);
    }

    #[test]
    fn alpha_is_total() {
        let mut ab = Alphabet::new();
        let m = m0(&mut ab);
        let d = ab.get_sym("d").unwrap();
        // Arbitrary garbage words map to the sink, never panic.
        assert_eq!(m.alpha(d, &[5, 5, 5]), 5);
        assert_eq!(m.alpha(d, &[1]), 0);
        assert_eq!(m.alpha(d, &[1, 2, 2, 2]), 0);
        assert_eq!(m.alpha(d, &[2]), 5);
    }
}

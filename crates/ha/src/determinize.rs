//! Theorem 1: the subset construction for hedge automata.
//!
//! States of the determinized automaton are *sets* of NHA states. The
//! construction has two intertwined fixpoints:
//!
//! 1. discover which subsets are reachable (a subset is reachable when some
//!    hedge's set-valued computation produces it at a node), and
//! 2. for each symbol, determinize the *lifted* horizontal automaton, whose
//!    alphabet is the set of reachable subsets: reading subset `S` means
//!    "some child state drawn from `S`".
//!
//! The lifted horizontal automaton for a symbol is the disjoint union of all
//! rule DFAs simulated as an NFA (a set of rule-DFA states), because a word
//! of subsets can satisfy several rules at once — exactly the `{q_p1, q_p2}`
//! effect in the paper's M₁ example. The worst case is exponential in the
//! number of NHA states, as Theorem 1 admits; the determinization benchmark
//! (experiment E2) measures both the blow-up family and the tame typical
//! case.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use hedgex_automata::{CharClass, Dfa, StateId};
use hedgex_hedge::SymId;
use hedgex_obs as obs;

use crate::dha::{Dha, HorizFn};
use crate::nha::Nha;
use crate::types::{HState, Leaf};

/// The result of determinizing: the DHA plus, for every DHA state, the NHA
/// subset it denotes (index = DHA state id).
pub struct Determinized {
    /// The deterministic automaton.
    pub dha: Dha,
    /// DHA state → NHA state set.
    pub subsets: Vec<BTreeSet<HState>>,
}

/// One symbol's combined rule automaton: all rule DFAs side by side, with
/// accepting states labelled by the rule's result state.
struct Combined {
    /// (rule DFA, result) pairs.
    rules: Vec<(Dfa<HState>, HState)>,
}

/// A lifted horizontal state: for each rule, the set of its DFA states the
/// NFA-simulation may currently be in.
type Lifted = Vec<BTreeSet<StateId>>;

impl Combined {
    fn initial(&self) -> Lifted {
        self.rules
            .iter()
            .map(|(d, _)| std::iter::once(d.start()).collect())
            .collect()
    }

    /// Step the lifted state by a subset of NHA states.
    fn step(&self, cur: &Lifted, subset: &BTreeSet<HState>) -> Lifted {
        self.rules
            .iter()
            .zip(cur)
            .map(|((d, _), states)| {
                let mut next = BTreeSet::new();
                for &s in states {
                    for q in subset {
                        next.insert(d.step(s, q));
                    }
                }
                next
            })
            .collect()
    }

    /// The result subset at a lifted state: which rules can accept here.
    fn results(&self, cur: &Lifted) -> BTreeSet<HState> {
        self.rules
            .iter()
            .zip(cur)
            .filter(|((d, _), states)| states.iter().any(|&s| d.is_accepting(s)))
            .map(|((_, q), _)| *q)
            .collect()
    }
}

/// Convert a non-deterministic hedge automaton into a deterministic one
/// accepting the same language (Theorem 1).
pub fn determinize(nha: &Nha) -> Determinized {
    let _span = obs::span("ha.determinize");
    let nha_states = nha.num_states() as u64;
    // Interned subsets. Id 0 is the empty subset (the sink).
    let mut ids: HashMap<BTreeSet<HState>, HState> = HashMap::new();
    let mut subsets: Vec<BTreeSet<HState>> = Vec::new();
    let mut intern = |set: BTreeSet<HState>, subsets: &mut Vec<BTreeSet<HState>>| -> HState {
        *ids.entry(set.clone()).or_insert_with(|| {
            subsets.push(set);
            (subsets.len() - 1) as HState
        })
    };
    intern(BTreeSet::new(), &mut subsets);

    // Leaf subsets.
    let mut iota: HashMap<Leaf, HState> = HashMap::new();
    for (leaf, qs) in nha.iotas() {
        let set: BTreeSet<HState> = qs.iter().copied().collect();
        iota.insert(leaf, intern(set, &mut subsets));
    }

    let combined: Vec<(SymId, Combined)> = nha
        .symbols()
        .map(|a| {
            (
                a,
                Combined {
                    rules: nha.rules(a).to_vec(),
                },
            )
        })
        .collect();

    // Fixpoint: discover all reachable subsets.
    let mut rounds = 0u64;
    let mut max_frontier = 0u64;
    loop {
        rounds += 1;
        let before = subsets.len();
        for (_, comb) in &combined {
            // BFS over lifted states, reading any currently-known subset.
            let mut seen: BTreeSet<Lifted> = BTreeSet::new();
            let mut work = vec![comb.initial()];
            seen.insert(comb.initial());
            while let Some(cur) = work.pop() {
                max_frontier = max_frontier.max(seen.len() as u64);
                let res = comb.results(&cur);
                intern(res, &mut subsets);
                // Read every currently-known subset; ones interned later in
                // this BFS are picked up by the outer fixpoint. Nothing
                // mutates `subsets` inside this loop, so no snapshot copy.
                for subset in &subsets {
                    let next = comb.step(&cur, subset);
                    if seen.insert(next.clone()) {
                        work.push(next);
                    }
                }
            }
        }
        if subsets.len() == before {
            break;
        }
    }

    let num_states = subsets.len() as u32;

    // Build each symbol's horizontal function against the final subset list.
    let mut horiz: HashMap<SymId, HorizFn> = HashMap::new();
    for (a, comb) in &combined {
        let (dfa, labels) = lift_to_dfa(comb, &subsets, &mut |set| {
            *ids.get(set).expect("fixpoint interned every result subset")
        });
        horiz.insert(*a, HorizFn::from_labeled_dfa(&dfa, &labels, num_states));
    }

    // Lift F: the determinized automaton accepts iff some word drawn from
    // the per-root subsets is accepted by the NHA's F.
    let finals = lift_finals(nha, &subsets);

    obs::counter_inc("ha.determinize.calls");
    obs::counter_add("ha.determinize.nha_states", nha_states);
    obs::counter_add("ha.determinize.dha_states", u64::from(num_states));
    obs::counter_add("ha.determinize.rounds", rounds);
    obs::histogram_record("ha.determinize.frontier", max_frontier);
    obs::histogram_record("ha.determinize.subsets", u64::from(num_states));
    obs::event("ha.determinize", || {
        format!(
            "nha_states={nha_states} dha_states={num_states} rounds={rounds} \
             max_frontier={max_frontier} blowup={:.2}",
            f64::from(num_states) / nha_states.max(1) as f64
        )
    });

    Determinized {
        dha: Dha::from_parts(num_states, 0, iota, horiz, finals),
        subsets,
    }
}

/// Determinize a combined rule automaton against the (now fixed) subset
/// alphabet, producing a total `Dfa` over subset ids plus a result label
/// (a subset id) per DFA state.
fn lift_to_dfa(
    comb: &Combined,
    subsets: &[BTreeSet<HState>],
    lookup: &mut impl FnMut(&BTreeSet<HState>) -> HState,
) -> (Dfa<HState>, Vec<HState>) {
    let mut ids: HashMap<Lifted, StateId> = HashMap::new();
    let mut order: Vec<Lifted> = Vec::new();
    let mut work: Vec<StateId> = Vec::new();
    let mut intern = |l: Lifted, order: &mut Vec<Lifted>, work: &mut Vec<StateId>| -> StateId {
        *ids.entry(l.clone()).or_insert_with(|| {
            order.push(l);
            work.push((order.len() - 1) as StateId);
            (order.len() - 1) as StateId
        })
    };
    let start = intern(comb.initial(), &mut order, &mut work);
    let mut trans: Vec<Vec<(CharClass<HState>, StateId)>> = Vec::new();
    while let Some(id) = work.pop() {
        // Take `cur` out instead of cloning: `intern` may push to `order`
        // below, and `ids` (not `order`) is what deduplicates, so the
        // temporarily-empty slot cannot be re-interned. Restored at the end.
        let cur = std::mem::take(&mut order[id as usize]);
        // Group subset-symbols by target lifted state.
        let mut by_target: BTreeMap<Vec<(StateId, Vec<StateId>)>, Vec<HState>> = BTreeMap::new();
        let mut targets: HashMap<HState, Lifted> = HashMap::new();
        for (i, subset) in subsets.iter().enumerate() {
            let next = comb.step(&cur, subset);
            // Key by a canonical encoding for grouping.
            let key: Vec<(StateId, Vec<StateId>)> = next
                .iter()
                .enumerate()
                .map(|(j, s)| (j as StateId, s.iter().copied().collect()))
                .collect();
            by_target.entry(key).or_default().push(i as HState);
            targets.insert(i as HState, next);
        }
        let mut edges: Vec<(CharClass<HState>, StateId)> = Vec::new();
        let mut covered: BTreeSet<HState> = BTreeSet::new();
        for (_, syms) in by_target {
            // Each subset-symbol lands in exactly one group, so its target
            // can be moved out rather than cloned.
            let tgt = targets.remove(&syms[0]).expect("every symbol has a target");
            let tid = intern(tgt, &mut order, &mut work);
            covered.extend(syms.iter().copied());
            edges.push((CharClass::of(syms), tid));
        }
        // Out-of-alphabet symbols dead-end into the empty lifted state.
        let dead: Lifted = comb.rules.iter().map(|_| BTreeSet::new()).collect();
        let dead_id = intern(dead, &mut order, &mut work);
        edges.push((CharClass::NotIn(covered), dead_id));
        if trans.len() < order.len() {
            trans.resize(order.len(), Vec::new());
        }
        trans[id as usize] = edges;
        order[id as usize] = cur;
    }
    if trans.len() < order.len() {
        trans.resize(order.len(), Vec::new());
    }
    for (q, row) in trans.iter_mut().enumerate() {
        if row.is_empty() {
            row.push((CharClass::any(), q as StateId));
        }
    }
    let labels: Vec<HState> = order.iter().map(|l| lookup(&comb.results(l))).collect();
    let accept = vec![false; order.len()]; // acceptance is irrelevant here
    (Dfa::from_parts(trans, start, accept), labels)
}

/// Lift the NHA's `F` (an NFA over Q) to a DFA over subset ids: a word of
/// subsets is accepted iff some choice of representatives is accepted by F.
fn lift_finals(nha: &Nha, subsets: &[BTreeSet<HState>]) -> Dfa<HState> {
    let f = nha.finals();
    let mut ids: HashMap<Vec<StateId>, StateId> = HashMap::new();
    let mut order: Vec<Vec<StateId>> = Vec::new();
    let mut work: Vec<StateId> = Vec::new();
    let mut intern =
        |set: Vec<StateId>, order: &mut Vec<Vec<StateId>>, work: &mut Vec<StateId>| -> StateId {
            *ids.entry(set.clone()).or_insert_with(|| {
                order.push(set);
                work.push((order.len() - 1) as StateId);
                (order.len() - 1) as StateId
            })
        };
    let start = intern(f.eps_closure(&[f.start()]), &mut order, &mut work);
    let mut trans: Vec<Vec<(CharClass<HState>, StateId)>> = Vec::new();
    while let Some(id) = work.pop() {
        // Same take-and-restore as `lift_to_dfa`: `ids` deduplicates, so the
        // emptied slot is never re-interned while we hold its contents.
        let cur = std::mem::take(&mut order[id as usize]);
        let mut by_target: BTreeMap<Vec<StateId>, Vec<HState>> = BTreeMap::new();
        for (i, subset) in subsets.iter().enumerate() {
            let mut moved: BTreeSet<StateId> = BTreeSet::new();
            for &s in &cur {
                for (c, t) in f.transitions(s) {
                    if subset.iter().any(|q| c.contains(q)) {
                        moved.insert(*t);
                    }
                }
            }
            let closed = f.eps_closure(&moved.into_iter().collect::<Vec<_>>());
            by_target.entry(closed).or_default().push(i as HState);
        }
        let mut edges: Vec<(CharClass<HState>, StateId)> = Vec::new();
        let mut covered: BTreeSet<HState> = BTreeSet::new();
        for (tgt, syms) in by_target {
            let tid = intern(tgt, &mut order, &mut work);
            covered.extend(syms.iter().copied());
            edges.push((CharClass::of(syms), tid));
        }
        let dead_id = intern(Vec::new(), &mut order, &mut work);
        edges.push((CharClass::NotIn(covered), dead_id));
        if trans.len() < order.len() {
            trans.resize(order.len(), Vec::new());
        }
        trans[id as usize] = edges;
        order[id as usize] = cur;
    }
    if trans.len() < order.len() {
        trans.resize(order.len(), Vec::new());
    }
    for (q, row) in trans.iter_mut().enumerate() {
        if row.is_empty() {
            row.push((CharClass::any(), q as StateId));
        }
    }
    let accept: Vec<bool> = order
        .iter()
        .map(|set| set.iter().any(|&s| f.is_accepting(s)))
        .collect();
    Dfa::from_parts(trans, start, accept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_hedges;
    use crate::nha::NhaBuilder;
    use hedgex_automata::Regex;
    use hedgex_hedge::{parse_hedge, Alphabet};

    /// The paper's M₁ (see `nha.rs`).
    fn m1(ab: &mut Alphabet) -> Nha {
        let d = ab.sym("d");
        let p = ab.sym("p");
        let x = ab.var("x");
        let mut b = NhaBuilder::new(4);
        b.leaf(Leaf::Var(x), 3)
            .rule(d, Regex::sym(1).concat(Regex::sym(2).star()), 0)
            .rule(p, Regex::word(&[3, 3]), 1)
            .rule(p, Regex::word(&[3, 3]), 2)
            .rule(p, Regex::word(&[3]), 1)
            .finals(Regex::sym(0).star());
        b.build()
    }

    #[test]
    fn determinized_m1_agrees_on_paper_hedges() {
        let mut ab = Alphabet::new();
        let nha = m1(&mut ab);
        let det = determinize(&nha);
        for (src, expect) in [
            ("d<p<$x> p<$y>>", false),
            ("d<p<$x $x> p<$x $x>>", true),
            ("d<p<$x $x>>", true),
            ("d<p<$x> p<$x>>", false),
            ("d<p<$x> p<$x $x>>", true),
            ("", true),
        ] {
            let h = parse_hedge(src, &mut ab).unwrap();
            assert_eq!(nha.accepts(&h), expect, "NHA on {src}");
            assert_eq!(det.dha.accepts(&h), expect, "DHA on {src}");
        }
    }

    #[test]
    fn determinized_agrees_on_all_small_hedges() {
        let mut ab = Alphabet::new();
        let nha = m1(&mut ab);
        let det = determinize(&nha);
        let syms: Vec<_> = ab.syms().collect();
        let vars: Vec<_> = ab.vars().collect();
        let mut count = 0;
        for h in enumerate_hedges(&syms, &vars, 5) {
            assert_eq!(
                nha.accepts(&h),
                det.dha.accepts(&h),
                "disagreement on hedge of size {}",
                h.size()
            );
            count += 1;
        }
        assert!(count > 100, "enumerated only {count} hedges");
    }

    #[test]
    fn subsets_reflect_set_semantics() {
        // The p⟨x x⟩ node should determinize into the subset {q_p1, q_p2}.
        let mut ab = Alphabet::new();
        let nha = m1(&mut ab);
        let det = determinize(&nha);
        let h = parse_hedge("d<p<$x $x>>", &mut ab).unwrap();
        let f = hedgex_hedge::FlatHedge::from_hedge(&h);
        let states = det.dha.run(&f);
        let p_state = states[1] as usize;
        let expected: BTreeSet<HState> = [1, 2].into_iter().collect();
        assert_eq!(det.subsets[p_state], expected);
    }

    #[test]
    fn empty_subset_is_sink() {
        let mut ab = Alphabet::new();
        let nha = m1(&mut ab);
        let det = determinize(&nha);
        assert_eq!(det.dha.sink(), 0);
        assert!(det.subsets[0].is_empty());
        // A hedge with an unmapped variable lands in the sink.
        let h = parse_hedge("d<p<$y>>", &mut ab).unwrap();
        let f = hedgex_hedge::FlatHedge::from_hedge(&h);
        let states = det.dha.run(&f);
        assert_eq!(det.subsets[states[2] as usize], BTreeSet::new());
    }

    #[test]
    fn deterministic_input_stays_small() {
        // Determinizing an already-deterministic automaton should produce
        // roughly one subset per original state (plus the sink), not 2^Q.
        let mut ab = Alphabet::new();
        let d = ab.sym("d");
        let p = ab.sym("p");
        let x = ab.var("x");
        let mut b = NhaBuilder::new(3);
        b.leaf(Leaf::Var(x), 2)
            .rule(p, Regex::word(&[2]), 1)
            .rule(d, Regex::sym(1).star(), 0)
            .finals(Regex::sym(0).star());
        let det = determinize(&b.build());
        assert!(
            det.dha.num_states() <= 4,
            "got {} states",
            det.dha.num_states()
        );
    }
}

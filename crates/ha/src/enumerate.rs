//! Exhaustive enumeration of small hedges.
//!
//! Language-level properties (Theorem 1's equivalence, Theorem 2's
//! round-trip, Theorem 3/5's marking correctness, schema-transformation
//! soundness) are tested by comparing automata on *every* hedge up to a node
//! budget over a small alphabet — an executable ∀ check that catches
//! off-by-one construction bugs random testing tends to miss.

use hedgex_hedge::{Hedge, SubId, SymId, Tree, VarId};

/// All hedges with at most `max_nodes` nodes whose Σ labels come from
/// `syms` and whose variable leaves come from `vars` (ε included).
///
/// The count grows exponentially in `max_nodes`; budgets of 4–6 over one or
/// two symbols are the practical range.
pub fn enumerate_hedges(syms: &[SymId], vars: &[VarId], max_nodes: usize) -> Vec<Hedge> {
    enumerate_hedges_with_subs(syms, vars, &[], max_nodes)
}

/// Like [`enumerate_hedges`], additionally producing substitution-symbol
/// leaves from `subs` — so `a⟨z⟩` shapes (and ill-formed bare/sibling `z`
/// placements, which every semantics here consistently rejects) are covered
/// when testing hedge regular expressions over `H[Σ, X, Z]`.
pub fn enumerate_hedges_with_subs(
    syms: &[SymId],
    vars: &[VarId],
    subs: &[SubId],
    max_nodes: usize,
) -> Vec<Hedge> {
    let vars_ext: Vec<LeafKind> = vars
        .iter()
        .map(|&x| LeafKind::Var(x))
        .chain(subs.iter().map(|&z| LeafKind::Sub(z)))
        .collect();
    let mut memo: Vec<Option<Vec<Hedge>>> = vec![None; max_nodes + 1];
    hedges_upto(syms, &vars_ext, max_nodes, &mut memo)
}

#[derive(Clone, Copy)]
enum LeafKind {
    Var(VarId),
    Sub(SubId),
}

impl LeafKind {
    fn tree(self) -> Tree {
        match self {
            LeafKind::Var(x) => Tree::Var(x),
            LeafKind::Sub(z) => Tree::Subst(z),
        }
    }
}

fn hedges_upto(
    syms: &[SymId],
    vars: &[LeafKind],
    budget: usize,
    memo: &mut Vec<Option<Vec<Hedge>>>,
) -> Vec<Hedge> {
    if let Some(cached) = &memo[budget] {
        return cached.clone();
    }
    let mut out = vec![Hedge::empty()];
    if budget > 0 {
        // A hedge is a first tree (size s ≥ 1) followed by a rest hedge.
        for (first, s) in trees_upto(syms, vars, budget, memo) {
            for rest in hedges_upto(syms, vars, budget - s, memo) {
                let mut trees = vec![first.clone()];
                trees.extend(rest.0);
                out.push(Hedge(trees));
            }
        }
    }
    memo[budget] = Some(out.clone());
    out
}

/// All trees with at most `budget` nodes, paired with their exact size.
fn trees_upto(
    syms: &[SymId],
    vars: &[LeafKind],
    budget: usize,
    memo: &mut Vec<Option<Vec<Hedge>>>,
) -> Vec<(Tree, usize)> {
    let mut out = Vec::new();
    if budget == 0 {
        return out;
    }
    for &x in vars {
        out.push((x.tree(), 1));
    }
    for &a in syms {
        for content in hedges_upto(syms, vars, budget - 1, memo) {
            let s = 1 + content.size();
            out.push((Tree::Node(a, content), s));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hedgex_hedge::Alphabet;
    use std::collections::HashSet;

    #[test]
    fn counts_for_single_symbol_no_vars() {
        let mut ab = Alphabet::new();
        let a = ab.sym("a");
        // Hedges over {a} with ≤ n nodes are counted by Catalan-like
        // numbers: n=0 → 1 (ε); n=1 → 2 (ε, a); n=2 → 4 (ε, a, aa, a⟨a⟩).
        assert_eq!(enumerate_hedges(&[a], &[], 0).len(), 1);
        assert_eq!(enumerate_hedges(&[a], &[], 1).len(), 2);
        assert_eq!(enumerate_hedges(&[a], &[], 2).len(), 4);
        assert_eq!(enumerate_hedges(&[a], &[], 3).len(), 9);
    }

    #[test]
    fn no_duplicates_and_budget_respected() {
        let mut ab = Alphabet::new();
        let a = ab.sym("a");
        let b = ab.sym("b");
        let x = ab.var("x");
        let all = enumerate_hedges(&[a, b], &[x], 4);
        let mut seen = HashSet::new();
        for h in &all {
            assert!(h.size() <= 4, "hedge too large: {} nodes", h.size());
            assert!(seen.insert(h.clone()), "duplicate hedge");
        }
    }

    #[test]
    fn includes_wide_and_deep_shapes() {
        let mut ab = Alphabet::new();
        let a = ab.sym("a");
        let all = enumerate_hedges(&[a], &[], 3);
        // Deep: a⟨a⟨a⟩⟩; wide: a a a.
        let deep = Hedge::node(a, Hedge::node(a, Hedge::leaf(a)));
        let wide = Hedge::leaf(a).concat(Hedge::leaf(a)).concat(Hedge::leaf(a));
        assert!(all.contains(&deep));
        assert!(all.contains(&wide));
    }

    #[test]
    fn variables_appear_as_leaves() {
        let mut ab = Alphabet::new();
        let a = ab.sym("a");
        let x = ab.var("x");
        let all = enumerate_hedges(&[a], &[x], 2);
        assert!(all.contains(&Hedge::var(x)));
        assert!(all.contains(&Hedge::node(a, Hedge::var(x))));
        assert!(all.contains(&Hedge::var(x).concat(Hedge::var(x))));
    }
}

//! Hedge automata (Murata, PODS 2001, Section 3).
//!
//! A hedge automaton assigns states bottom-up: leaves get states through
//! `ι`, and a node `a⟨u⟩` gets `α(a, q₁…q_k)` where `q₁…q_k` are the states
//! of its children. All horizontal structure lives in *regular string
//! languages over the state set Q*, supplied by `hedgex-automata`:
//!
//! * a **deterministic** hedge automaton ([`Dha`], Definition 3) makes `α` a
//!   total function `Σ × Q* → Q` whose inverse images `α⁻¹(a, q)` are
//!   regular, and accepts a hedge when the ceil of its computation lies in
//!   the final state sequence set `F` (Definitions 4–5);
//! * a **non-deterministic** hedge automaton ([`Nha`], Definitions 6–8)
//!   maps into sets of states; it is executed directly by a set-valued
//!   bottom-up pass, or converted to a [`Dha`] by the subset construction
//!   of Theorem 1 ([`determinize`]).
//!
//! Also here: products of automata (used by Theorem 4's shared-state
//! construction and by schema transformation), reachability analyses
//! (inhabited and top-useful states, emptiness, witness extraction), an
//! exhaustive small-hedge enumerator for language-equality testing, and the
//! paper's own worked examples `M₀`/`M₁` ([`paper`]).

#![forbid(unsafe_code)]

pub mod analysis;
pub mod determinize;
pub mod dha;
pub mod enumerate;
pub mod minimize;
pub mod nha;
pub mod ops;
pub mod paper;
pub mod product;
pub mod reduce;
pub mod scratch;
pub mod types;

pub use determinize::determinize;
pub use dha::{Dha, DhaBuilder, EvalScratch, HorizFn};
pub use enumerate::enumerate_hedges;
pub use nha::{Nha, NhaBuilder};
pub use reduce::{reduce_dha, ReduceStats};
pub use scratch::WordPool;
pub use types::{HState, Leaf};

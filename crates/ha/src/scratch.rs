//! Buffer recycling for drivers that open and close many short-lived
//! state words — most prominently the streaming evaluator, where every
//! open element borrows buffers for its children's ids and `M`-states and
//! returns them at the close tag. Pooling bounds allocations by the
//! *deepest simultaneously open path* instead of the node count.

/// A free list of `Vec<u32>` word buffers.
///
/// [`take`](WordPool::take) hands out a cleared buffer (reusing a returned
/// one when available), [`put`](WordPool::put) returns it. Capacity is
/// retained across the take/put cycle, so a long run converges to zero
/// allocation: the pool holds at most as many buffers as were ever live at
/// once.
#[derive(Debug, Default)]
pub struct WordPool {
    free: Vec<Vec<u32>>,
}

impl WordPool {
    /// An empty pool.
    pub fn new() -> WordPool {
        WordPool::default()
    }

    /// Borrow a cleared buffer, recycling a returned one if possible.
    pub fn take(&mut self) -> Vec<u32> {
        self.free.pop().unwrap_or_default()
    }

    /// Return a buffer to the pool, keeping its capacity.
    pub fn put(&mut self, mut buf: Vec<u32>) {
        buf.clear();
        self.free.push(buf);
    }

    /// How many buffers are parked in the free list (for tests asserting
    /// the pool, not the document, owns the steady-state allocations).
    pub fn parked(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_recycled_with_capacity() {
        let mut pool = WordPool::new();
        let mut a = pool.take();
        a.extend(0..100);
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.parked(), 1);
        let b = pool.take();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "capacity survives the cycle");
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn pool_size_tracks_peak_liveness() {
        let mut pool = WordPool::new();
        let bufs: Vec<_> = (0..3).map(|_| pool.take()).collect();
        for b in bufs {
            pool.put(b);
        }
        // Re-borrowing the same three never grows the free list.
        for _ in 0..10 {
            let x = pool.take();
            let y = pool.take();
            pool.put(x);
            pool.put(y);
        }
        assert_eq!(pool.parked(), 3);
    }
}

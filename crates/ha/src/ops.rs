//! Boolean language operations and decision procedures on deterministic
//! hedge automata.
//!
//! Because a [`Dha`] is *total* — every node of every hedge over the
//! declared alphabet receives a state (the sink catches everything
//! unmatched) — complementation is just flipping the final state sequence
//! set, and the other operations follow from products:
//!
//! * [`complement`] — `L^c` relative to hedges over the automaton's
//!   (open) alphabet;
//! * [`union`] / [`intersection`] / [`difference`] — via the lifted-finals
//!   product;
//! * [`equivalent`] / [`included`] — decision procedures via difference +
//!   emptiness, with counterexample extraction.
//!
//! These turn language-level claims in the test suite (e.g. Theorem 2's
//! `L(compile(decompile(M))) = L(M)`) into *exact* decisions instead of
//! sampled comparisons.

use hedgex_hedge::Hedge;
use hedgex_obs as obs;

use crate::analysis::accepted_witness;
use crate::dha::Dha;
use crate::product::product_many;

/// The complement of `L(dha)` within the hedges over the automaton's
/// alphabet (any hedge at all, in fact: unknown symbols and leaves land in
/// the sink and are classified like every other state).
pub fn complement(dha: &Dha) -> Dha {
    let finals = dha.finals().complement();
    dha.clone().with_finals(finals)
}

/// `L(a) ∪ L(b)`.
pub fn union(a: &Dha, b: &Dha) -> Dha {
    let prod = product_many(&[a, b]);
    let finals = prod.lifted_finals[0].union(&prod.lifted_finals[1]);
    prod.dha.with_finals(finals)
}

/// `L(a) ∩ L(b)`.
pub fn intersection(a: &Dha, b: &Dha) -> Dha {
    let prod = product_many(&[a, b]);
    let finals = prod.lifted_finals[0].intersect(&prod.lifted_finals[1]);
    prod.dha.with_finals(finals)
}

/// `L(a) \ L(b)`.
pub fn difference(a: &Dha, b: &Dha) -> Dha {
    let prod = product_many(&[a, b]);
    let finals = prod.lifted_finals[0].difference(&prod.lifted_finals[1]);
    prod.dha.with_finals(finals)
}

/// Is `L(a) ⊆ L(b)`? On failure, returns a witness hedge in `L(a) \ L(b)`.
pub fn included(a: &Dha, b: &Dha) -> Result<(), Hedge> {
    let _span = obs::span("ha.included");
    let out = match accepted_witness(&difference(a, b)) {
        None => Ok(()),
        Some(w) => Err(w),
    };
    obs::event("ha.included", || {
        format!(
            "lhs_states={} rhs_states={} holds={}",
            a.num_states(),
            b.num_states(),
            out.is_ok()
        )
    });
    out
}

/// Is `L(a) = L(b)`? On failure, returns a hedge in the symmetric
/// difference (and which side it came from).
pub fn equivalent(a: &Dha, b: &Dha) -> Result<(), Hedge> {
    included(a, b)?;
    included(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dha::DhaBuilder;
    use crate::enumerate::enumerate_hedges;
    use hedgex_automata::Regex;
    use hedgex_hedge::Alphabet;

    /// Hedges over {a,b}: top level a*, a's contain b*, b's empty.
    fn lang_a_of_bs(ab: &mut Alphabet) -> Dha {
        let a = ab.sym("a");
        let b = ab.sym("b");
        let mut d = DhaBuilder::new(3, 2);
        d.rule(b, Regex::Epsilon, 1)
            .rule(a, Regex::sym(1).star(), 0)
            .finals(Regex::sym(0).star());
        d.build()
    }

    /// Top level is exactly two trees, anything inside (over {a,b}).
    fn lang_two_roots(ab: &mut Alphabet) -> Dha {
        let a = ab.sym("a");
        let b = ab.sym("b");
        let mut d = DhaBuilder::new(2, 1);
        d.rule(a, Regex::sym(0).star(), 0)
            .rule(b, Regex::sym(0).star(), 0)
            .finals(Regex::word(&[0, 0]));
        d.build()
    }

    #[test]
    fn complement_flips_membership_pointwise() {
        let mut ab = Alphabet::new();
        let m = lang_a_of_bs(&mut ab);
        let c = complement(&m);
        let syms: Vec<_> = ab.syms().collect();
        for h in enumerate_hedges(&syms, &[], 5) {
            assert_eq!(m.accepts(&h), !c.accepts(&h), "on {h:?}");
        }
    }

    #[test]
    fn boolean_ops_match_pointwise_semantics() {
        let mut ab = Alphabet::new();
        let m1 = lang_a_of_bs(&mut ab);
        let m2 = lang_two_roots(&mut ab);
        let u = union(&m1, &m2);
        let i = intersection(&m1, &m2);
        let d = difference(&m1, &m2);
        let syms: Vec<_> = ab.syms().collect();
        for h in enumerate_hedges(&syms, &[], 5) {
            let (x, y) = (m1.accepts(&h), m2.accepts(&h));
            assert_eq!(u.accepts(&h), x || y);
            assert_eq!(i.accepts(&h), x && y);
            assert_eq!(d.accepts(&h), x && !y);
        }
    }

    #[test]
    fn equivalence_decision() {
        let mut ab = Alphabet::new();
        let m1 = lang_a_of_bs(&mut ab);
        // Same language, structurally different automaton (extra state).
        let a = ab.get_sym("a").unwrap();
        let b = ab.get_sym("b").unwrap();
        let mut d = DhaBuilder::new(4, 3);
        d.rule(b, Regex::Epsilon, 2)
            .rule(a, Regex::sym(2).star(), 0)
            .finals(Regex::Epsilon.alt(Regex::sym(0).plus()));
        let m1b = d.build();
        assert!(equivalent(&m1, &m1b).is_ok());

        let m2 = lang_two_roots(&mut ab);
        let err = equivalent(&m1, &m2).unwrap_err();
        // The witness is in the symmetric difference.
        assert_ne!(m1.accepts(&err), m2.accepts(&err));
    }

    #[test]
    fn inclusion_with_witness() {
        let mut ab = Alphabet::new();
        let m1 = lang_a_of_bs(&mut ab);
        let every = {
            let a = ab.get_sym("a").unwrap();
            let b = ab.get_sym("b").unwrap();
            let mut d = DhaBuilder::new(2, 1);
            d.rule(a, Regex::sym(0).star(), 0)
                .rule(b, Regex::sym(0).star(), 0)
                .finals(Regex::sym(0).star());
            d.build()
        };
        assert!(included(&m1, &every).is_ok());
        let w = included(&every, &m1).unwrap_err();
        assert!(every.accepts(&w) && !m1.accepts(&w));
    }

    #[test]
    fn de_morgan_holds() {
        let mut ab = Alphabet::new();
        let m1 = lang_a_of_bs(&mut ab);
        let m2 = lang_two_roots(&mut ab);
        let lhs = complement(&union(&m1, &m2));
        let rhs = intersection(&complement(&m1), &complement(&m2));
        assert!(equivalent(&lhs, &rhs).is_ok());
    }
}

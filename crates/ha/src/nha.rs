//! Non-deterministic hedge automata (Definitions 6–8).
//!
//! Transitions are stored as rules `(a, L, q)` meaning `α(a, w) ∋ q` for all
//! `w ∈ L`; each `L` is kept as a total DFA over the state set so that both
//! direct execution and the subset construction can step it mechanically.
//! Direct execution computes, for every node, the set of states reachable by
//! *some* computation — a bottom-up pass that is linear in the number of
//! nodes (with automaton-size-dependent constants).

use std::collections::HashMap;

use hedgex_automata::{Dfa, Nfa, Regex};
use hedgex_hedge::{FlatHedge, Hedge, SymId};

use crate::types::{HState, Leaf};

/// A compact set of hedge-automaton states.
pub type StateSet = Vec<u64>;

/// Bit-set helpers over `Vec<u64>` blocks.
pub mod bits {
    use super::StateSet;

    /// An empty set sized for `n` states.
    pub fn empty(n: u32) -> StateSet {
        vec![0; (n as usize).div_ceil(64)]
    }

    /// Insert `q`; returns true if newly inserted.
    pub fn insert(s: &mut StateSet, q: u32) -> bool {
        let (w, b) = (q as usize / 64, q as usize % 64);
        let had = s[w] & (1 << b) != 0;
        s[w] |= 1 << b;
        !had
    }

    /// Membership.
    pub fn contains(s: &StateSet, q: u32) -> bool {
        s[q as usize / 64] & (1 << (q as usize % 64)) != 0
    }

    /// Iterate members in increasing order.
    pub fn iter(s: &StateSet) -> impl Iterator<Item = u32> + '_ {
        s.iter().enumerate().flat_map(|(w, &blk)| {
            (0..64)
                .filter(move |b| blk & (1 << b) != 0)
                .map(move |b| (w * 64 + b) as u32)
        })
    }

    /// Is the set empty?
    pub fn is_empty(s: &StateSet) -> bool {
        s.iter().all(|&b| b == 0)
    }
}

/// A non-deterministic hedge automaton `(Σ, X, Q, ι, α, F)`.
#[derive(Debug, Clone)]
pub struct Nha {
    num_states: u32,
    iota: HashMap<Leaf, Vec<HState>>,
    /// Per symbol: rules `(L, q)` with `L` a total DFA over `Q`.
    rules: HashMap<SymId, Vec<(Dfa<HState>, HState)>>,
    finals: Nfa<HState>,
}

impl Nha {
    /// Number of states `|Q|`.
    pub fn num_states(&self) -> u32 {
        self.num_states
    }

    /// `ι(leaf)` (empty when undefined, matching the paper's `ι(y) = ∅`).
    pub fn iota(&self, leaf: Leaf) -> &[HState] {
        self.iota.get(&leaf).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All declared leaf mappings.
    pub fn iotas(&self) -> impl Iterator<Item = (Leaf, &[HState])> {
        self.iota.iter().map(|(l, v)| (*l, v.as_slice()))
    }

    /// The rules of a symbol.
    pub fn rules(&self, a: SymId) -> &[(Dfa<HState>, HState)] {
        self.rules.get(&a).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All symbols with declared rules.
    pub fn symbols(&self) -> impl Iterator<Item = SymId> + '_ {
        self.rules.keys().copied()
    }

    /// The final state sequence set `F` as an NFA over `Q`.
    pub fn finals(&self) -> &Nfa<HState> {
        &self.finals
    }

    /// Assemble from raw parts (used by Lemma 1's compiler and Theorem 5's
    /// match-identifying construction).
    pub fn from_parts(
        num_states: u32,
        iota: HashMap<Leaf, Vec<HState>>,
        rules: HashMap<SymId, Vec<(Dfa<HState>, HState)>>,
        finals: Nfa<HState>,
    ) -> Nha {
        Nha {
            num_states,
            iota,
            rules,
            finals,
        }
    }

    /// The per-node state sets of all computations (Definition 7, computed
    /// as sets): `sets[n] = { q | some computation assigns q to n }`.
    pub fn run_sets(&self, h: &FlatHedge) -> Vec<StateSet> {
        use hedgex_hedge::flat::FlatLabel;
        let n = h.num_nodes();
        let mut sets: Vec<StateSet> = vec![bits::empty(self.num_states); n];
        for id in (0..n as u32).rev() {
            match h.label(id) {
                FlatLabel::Var(x) => {
                    for &q in self.iota(Leaf::Var(x)) {
                        bits::insert(&mut sets[id as usize], q);
                    }
                }
                FlatLabel::Subst(z) => {
                    for &q in self.iota(Leaf::Sub(z)) {
                        bits::insert(&mut sets[id as usize], q);
                    }
                }
                FlatLabel::Sym(a) => {
                    let children = h.children(id);
                    for (dfa, q) in self.rules(a) {
                        if bits::contains(&sets[id as usize], *q) {
                            continue;
                        }
                        if self.dfa_reaches_accept(dfa, &children, &sets) {
                            bits::insert(&mut sets[id as usize], *q);
                        }
                    }
                }
            }
        }
        sets
    }

    /// Does `dfa` accept some word `w₁…w_k` with `w_i ∈ sets[child_i]`?
    /// (A DFA simulated non-deterministically over the symbol choices.)
    fn dfa_reaches_accept(&self, dfa: &Dfa<HState>, children: &[u32], sets: &[StateSet]) -> bool {
        let mut cur: Vec<bool> = vec![false; dfa.num_states()];
        cur[dfa.start() as usize] = true;
        for &c in children {
            let mut next = vec![false; dfa.num_states()];
            let mut any = false;
            for d in 0..dfa.num_states() as u32 {
                if !cur[d as usize] {
                    continue;
                }
                for q in bits::iter(&sets[c as usize]) {
                    let t = dfa.step(d, &q);
                    next[t as usize] = true;
                    any = true;
                }
            }
            if !any {
                return false;
            }
            cur = next;
        }
        cur.iter()
            .enumerate()
            .any(|(d, &on)| on && dfa.is_accepting(d as u32))
    }

    /// Like [`Nha::run_sets`], but every node's state set is additionally
    /// restricted by `filter` before its parents consume it. Used to ask
    /// "does some computation assign one of *these* states to *this* node?"
    /// — e.g. Theorem 5's marked states, whose unique-success property makes
    /// the answer equal to "does *the* successful computation mark it?".
    pub fn run_sets_filtered(
        &self,
        h: &FlatHedge,
        filter: &dyn Fn(u32, HState) -> bool,
    ) -> Vec<StateSet> {
        use hedgex_hedge::flat::FlatLabel;
        let n = h.num_nodes();
        let mut sets: Vec<StateSet> = vec![bits::empty(self.num_states); n];
        for id in (0..n as u32).rev() {
            match h.label(id) {
                FlatLabel::Var(x) => {
                    for &q in self.iota(Leaf::Var(x)) {
                        if filter(id, q) {
                            bits::insert(&mut sets[id as usize], q);
                        }
                    }
                }
                FlatLabel::Subst(z) => {
                    for &q in self.iota(Leaf::Sub(z)) {
                        if filter(id, q) {
                            bits::insert(&mut sets[id as usize], q);
                        }
                    }
                }
                FlatLabel::Sym(a) => {
                    let children = h.children(id);
                    for (dfa, q) in self.rules(a) {
                        if !filter(id, *q) || bits::contains(&sets[id as usize], *q) {
                            continue;
                        }
                        if self.dfa_reaches_accept(dfa, &children, &sets) {
                            bits::insert(&mut sets[id as usize], *q);
                        }
                    }
                }
            }
        }
        sets
    }

    /// Acceptance given precomputed per-node state sets.
    pub fn accepts_sets(&self, h: &FlatHedge, sets: &[StateSet]) -> bool {
        let f = &self.finals;
        let mut cur = f.eps_closure(&[f.start()]);
        for &r in h.roots() {
            let mut next = std::collections::BTreeSet::new();
            for &s in &cur {
                for (c, t) in f.transitions(s) {
                    for q in bits::iter(&sets[r as usize]) {
                        if c.contains(&q) {
                            next.insert(*t);
                            break;
                        }
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            cur = f.eps_closure(&next.into_iter().collect::<Vec<_>>());
        }
        cur.iter().any(|&s| f.is_accepting(s))
    }

    /// Does some accepting computation satisfy `filter` at every node?
    pub fn accepts_flat_filtered(
        &self,
        h: &FlatHedge,
        filter: &dyn Fn(u32, HState) -> bool,
    ) -> bool {
        let sets = self.run_sets_filtered(h, filter);
        self.accepts_sets(h, &sets)
    }

    /// Acceptance (Definition 8): some computation's ceil lies in `F`.
    ///
    /// The top-level sequence is checked by simulating `F`'s NFA with the
    /// per-root state sets as symbol choices.
    pub fn accepts_flat(&self, h: &FlatHedge) -> bool {
        let sets = self.run_sets(h);
        let f = &self.finals;
        let mut cur = f.eps_closure(&[f.start()]);
        for &r in h.roots() {
            let mut next = std::collections::BTreeSet::new();
            for &s in &cur {
                for (c, t) in f.transitions(s) {
                    for q in bits::iter(&sets[r as usize]) {
                        if c.contains(&q) {
                            next.insert(*t);
                            break;
                        }
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            cur = f.eps_closure(&next.into_iter().collect::<Vec<_>>());
        }
        cur.iter().any(|&s| f.is_accepting(s))
    }

    /// Acceptance on a recursive hedge.
    pub fn accepts(&self, h: &Hedge) -> bool {
        self.accepts_flat(&FlatHedge::from_hedge(h))
    }
}

/// Incremental construction of an [`Nha`].
#[derive(Debug)]
pub struct NhaBuilder {
    num_states: u32,
    iota: HashMap<Leaf, Vec<HState>>,
    rules: HashMap<SymId, Vec<(Dfa<HState>, HState)>>,
    finals: Option<Nfa<HState>>,
}

impl NhaBuilder {
    /// Start a builder with `num_states` states.
    pub fn new(num_states: u32) -> NhaBuilder {
        NhaBuilder {
            num_states,
            iota: HashMap::new(),
            rules: HashMap::new(),
            finals: None,
        }
    }

    /// Add `q` to `ι(leaf)`.
    pub fn leaf(&mut self, leaf: impl Into<Leaf>, q: HState) -> &mut Self {
        assert!(q < self.num_states);
        self.iota.entry(leaf.into()).or_default().push(q);
        self
    }

    /// Declare `α(a, w) ∋ q` for all `w ∈ L(re)`.
    pub fn rule(&mut self, a: SymId, re: Regex<HState>, q: HState) -> &mut Self {
        assert!(q < self.num_states);
        let dfa = Nfa::from_regex(&re).to_dfa();
        self.rules.entry(a).or_default().push((dfa, q));
        self
    }

    /// Declare the final state sequence set `F = L(re)`.
    pub fn finals(&mut self, re: Regex<HState>) -> &mut Self {
        self.finals = Some(Nfa::from_regex(&re));
        self
    }

    /// Assemble the automaton.
    pub fn build(self) -> Nha {
        Nha {
            num_states: self.num_states,
            iota: self.iota,
            rules: self.rules,
            finals: self.finals.unwrap_or_else(Nfa::empty_lang),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hedgex_hedge::{parse_hedge, Alphabet};

    /// The paper's M₁ (Section 3).
    ///
    /// States: 0=q_d, 1=q_p1, 2=q_p2, 3=q_x. ι(x) = {q_x}, ι(y) = ∅.
    /// α(d, u) = {q_d} if u ∈ L(q_p1 q_p2*); α(p, q_x q_x) = {q_p1, q_p2};
    /// α(p, q_x) = {q_p1}; F = q_d* (the paper's text writes `q_x*`, an
    /// evident typo: leaf states never appear at the top level of the
    /// intended examples — both hedges executed there are single `d` trees).
    fn m1(ab: &mut Alphabet) -> Nha {
        let d = ab.sym("d");
        let p = ab.sym("p");
        let x = ab.var("x");
        ab.var("y"); // ι(y) = ∅: simply not declared
        let mut b = NhaBuilder::new(4);
        b.leaf(Leaf::Var(x), 3)
            .rule(d, Regex::sym(1).concat(Regex::sym(2).star()), 0)
            .rule(p, Regex::word(&[3, 3]), 1)
            .rule(p, Regex::word(&[3, 3]), 2)
            .rule(p, Regex::word(&[3]), 1)
            .finals(Regex::sym(0).star());
        b.build()
    }

    #[test]
    fn m1_rejects_first_paper_hedge() {
        // d⟨p⟨x⟩ p⟨y⟩⟩: ι(y) = ∅, so the computation set is empty.
        let mut ab = Alphabet::new();
        let m = m1(&mut ab);
        let h = parse_hedge("d<p<$x> p<$y>>", &mut ab).unwrap();
        assert!(!m.accepts(&h));
    }

    #[test]
    fn m1_accepts_second_paper_hedge() {
        // d⟨p⟨x x⟩ p⟨x x⟩⟩: computations exist with ceils q_d ∈ F.
        let mut ab = Alphabet::new();
        let m = m1(&mut ab);
        let h = parse_hedge("d<p<$x $x> p<$x $x>>", &mut ab).unwrap();
        assert!(m.accepts(&h));
    }

    #[test]
    fn m1_state_sets_match_paper_computations() {
        // The computations of d⟨p⟨xx⟩ p⟨xx⟩⟩ assign {q_p1, q_p2} to both
        // p nodes and {q_d} to the d node.
        let mut ab = Alphabet::new();
        let m = m1(&mut ab);
        let h = parse_hedge("d<p<$x $x> p<$x $x>>", &mut ab).unwrap();
        let f = FlatHedge::from_hedge(&h);
        let sets = m.run_sets(&f);
        let collect = |i: usize| bits::iter(&sets[i]).collect::<Vec<_>>();
        assert_eq!(collect(0), vec![0]); // d: {q_d}
        assert_eq!(collect(1), vec![1, 2]); // first p: {q_p1, q_p2}
        assert_eq!(collect(4), vec![1, 2]); // second p
        assert_eq!(collect(2), vec![3]); // x leaves: {q_x}
    }

    #[test]
    fn nondeterminism_requires_global_consistency() {
        // d⟨p⟨xx⟩⟩ alone: the single p can be q_p1 or q_p2, but only
        // q_p1 alone satisfies d's rule... and q_p2 alone does not.
        let mut ab = Alphabet::new();
        let m = m1(&mut ab);
        assert!(m.accepts(&parse_hedge("d<p<$x $x>>", &mut ab).unwrap()));
        // p q_p2-only content under d: impossible input — p⟨x⟩ only maps
        // to q_p1, and q_p1 q_p2* needs the first child to be q_p1.
        assert!(m.accepts(&parse_hedge("d<p<$x> p<$x $x>>", &mut ab).unwrap()));
        assert!(!m.accepts(&parse_hedge("d<p<$x> p<$x>>", &mut ab).unwrap()));
    }

    #[test]
    fn empty_hedge_acceptance_follows_finals() {
        let mut ab = Alphabet::new();
        let m = m1(&mut ab);
        // F = q_d* contains ε.
        assert!(m.accepts(&parse_hedge("", &mut ab).unwrap()));
    }

    #[test]
    fn undeclared_leaves_have_empty_iota() {
        let mut ab = Alphabet::new();
        let m = m1(&mut ab);
        let y = ab.get_var("y").unwrap();
        assert!(m.iota(Leaf::Var(y)).is_empty());
        let h = parse_hedge("d<p<$y>>", &mut ab).unwrap();
        assert!(!m.accepts(&h));
    }

    #[test]
    fn bitset_helpers() {
        let mut s = bits::empty(130);
        assert!(bits::is_empty(&s));
        assert!(bits::insert(&mut s, 0));
        assert!(!bits::insert(&mut s, 0));
        assert!(bits::insert(&mut s, 64));
        assert!(bits::insert(&mut s, 129));
        assert!(bits::contains(&s, 129));
        assert!(!bits::contains(&s, 128));
        assert_eq!(bits::iter(&s).collect::<Vec<_>>(), vec![0, 64, 129]);
        assert!(!bits::is_empty(&s));
    }
}

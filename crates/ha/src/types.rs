//! Shared id types for hedge automata.

use hedgex_hedge::{SubId, VarId};

/// A hedge-automaton state. Dense, starting at 0 within each automaton.
pub type HState = u32;

/// A leaf label: hedge automata assign `ι`-states to variable leaves, and —
/// following Lemma 1's proof, which "allow[s] substitution symbols as
/// variables of hedge automata" — also to substitution-symbol leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Leaf {
    /// A variable of X.
    Var(VarId),
    /// A substitution symbol of Z (including the reserved η).
    Sub(SubId),
}

impl From<VarId> for Leaf {
    fn from(v: VarId) -> Self {
        Leaf::Var(v)
    }
}

impl From<SubId> for Leaf {
    fn from(z: SubId) -> Self {
        Leaf::Sub(z)
    }
}

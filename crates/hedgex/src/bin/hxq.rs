//! `hxq` — query XML documents with extended path expressions.
//!
//! ```text
//! hxq --path  'article section* figure'  doc.xml     # classical path expr
//! hxq --phr   '[…;figure;…][…]'          doc.xml     # full PHR syntax
//! hxq --subhedge 'caption<$#text>' --path '…' doc.xml # select(e1, e2)
//! hxq … --mark                                        # print marked XML
//! hxq … --explain                                     # per-phase report
//! hxq … -                                             # read from stdin
//! hxq --stream --path '…' -                           # evaluate during the
//!                                                     # parse, O(depth) memory
//! hxq --stream --exists --path '…' doc.xml            # stop at first match
//! hxq --count --phr '…' doc.xml                       # print the match count
//! hxq --stream --count --path '…' -                   # count a stdin stream,
//!                                                     # O(depth) memory
//! hxq check '[…;figure;…]' --schema HRE               # static analysis,
//!                                                     # no document at all
//! hxq index corpus/ --out corpus.hxst                 # parse + index once
//! hxq --store corpus.hxst --path '…'                  # indexed, pruned
//!                                                     # queries over it all
//! ```
//!
//! Prints the Dewey addresses of located nodes (one per line), or with
//! `--mark` the whole document with `hx:match="1"` on matches. Results go
//! to stdout; diagnostics and `--explain` reports go to stderr. Exit code
//! 0 on success, 1 on runtime errors (malformed or truncated input
//! included), 2 on usage errors (malformed queries included); with
//! `--exists`, 0 means some node matched and 1 means none did. `--count`
//! prints the number of matches (a count of 0 is an answer, not an error)
//! and the evaluator never materializes the match set — counting uses
//! per-state tallies, and `--exists` additionally prunes subtrees that
//! provably cannot match and stops at the first that does.
//!
//! `hxq check` decides satisfiability (absolute or against a schema),
//! prints a witness document or a why-empty reason plus the query's
//! required symbols, and optionally decides containment against a second
//! query — all statically, without reading any document. Exit code 0 when
//! satisfiable, 1 when provably empty, 2 on usage errors.

use std::io::Read;
use std::process::ExitCode;
use std::time::Instant;

use hedgex::prelude::*;
use hedgex::ExplainReport;

struct Args {
    path: Option<String>,
    phr: Option<String>,
    subhedge: Option<String>,
    mark: bool,
    keep_attrs: bool,
    explain: bool,
    metrics_json: Option<String>,
    trace: Option<String>,
    repeat: Option<u64>,
    jobs: Option<u64>,
    stream: bool,
    exists: bool,
    count: bool,
    store: Option<String>,
    file: Option<String>,
}

const HELP: &str = "\
usage: hxq (--path EXPR | --phr EXPR) [OPTIONS] FILE|-

  --path EXPR          classical path expression (root-to-node),
                       e.g. 'article section* figure'
  --phr EXPR           pointed hedge representation, e.g. '[e1 ; name ; e2][…]*'
  --subhedge HRE       additionally require the node's content to match
                       (select(e1, e2))
  --mark               print the document with hx:match=\"1\" on located nodes
  --attrs              map attributes to attr:name children (queryable)
  --explain            print a per-phase pipeline report (automaton sizes,
                       timings, match counts) to stderr
  --metrics-json PATH  write the explain report as JSON to PATH (with
                       --stream: a streaming report — phases, event counts,
                       high-water marks)
  --trace PATH         write the run's span timeline as Chrome trace-event
                       JSON to PATH (open in Perfetto or chrome://tracing;
                       an empty array when obs is compiled out)
  --repeat N           evaluate the query N times reusing one compiled plan
                       and one scratch; print aggregate wall time to stderr
  --jobs N             spread the repeated runs over N worker threads, one
                       scratch per worker; N=1 is exactly the sequential path
  --stream             evaluate during the parse (push-based): the document
                       is never materialized, memory is bounded by its depth;
                       incompatible with --mark/--subhedge/--explain/
                       --repeat/--jobs
  --exists             print nothing; exit 0 if any node matches, 1 if none
                       (with --stream, stops reading at the first match;
                       materialized, prunes provably barren subtrees)
  --count              print the number of matching nodes instead of their
                       addresses; no match set is materialized (with
                       --stream + --path, memory stays O(depth))
  --store STORE        query every document in a persistent store built by
                       'hxq index' instead of a FILE: answers use the
                       store's structural index to skip documents and
                       subtrees that provably cannot match. Locate output
                       is 'NAME:/dewey' lines; --count prints the corpus
                       total; --exists exits 0 if any document matches.
                       Composes with --repeat/--jobs; no FILE argument
  -h, --help           show this help
  FILE                 an XML file, or '-' for stdin

static analysis (no document involved):
  hxq check QUERY [OPTIONS]
    QUERY                  the query as a PHR, e.g. '[e1 ; name ; e2][…]*'
    --subhedge HRE         additionally require the node's content to match
    --schema HRE           decide satisfiability relative to this schema
    --against QUERY2       also decide containment/equivalence vs QUERY2
    --against-subhedge HRE subhedge condition of QUERY2
    --metrics-json PATH    write phase timings and verdicts as JSON to PATH
    --trace PATH           write the span timeline as Chrome trace-event JSON
  exit code: 0 satisfiable, 1 provably empty, 2 usage error

persistent corpora:
  hxq index DIR --out STORE [--attrs]
    parse every *.xml file in DIR (sorted by name) and write a versioned,
    checksummed store with a per-document structural index to STORE
  exit code: 0 ok, 1 i/o or parse error, 2 usage error";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("hxq: {msg} (try 'hxq --help')");
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut out = Args {
        path: None,
        phr: None,
        subhedge: None,
        mark: false,
        keep_attrs: false,
        explain: false,
        metrics_json: None,
        trace: None,
        repeat: None,
        jobs: None,
        stream: false,
        exists: false,
        count: false,
        store: None,
        file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| usage_error(&format!("option '{flag}' needs a value")))
        };
        match arg.as_str() {
            "--path" => out.path = Some(value("--path")?),
            "--phr" => out.phr = Some(value("--phr")?),
            "--subhedge" => out.subhedge = Some(value("--subhedge")?),
            "--mark" => out.mark = true,
            "--attrs" => out.keep_attrs = true,
            "--explain" => out.explain = true,
            "--stream" => out.stream = true,
            "--exists" => out.exists = true,
            "--count" => out.count = true,
            "--metrics-json" => out.metrics_json = Some(value("--metrics-json")?),
            "--trace" => out.trace = Some(value("--trace")?),
            "--store" => out.store = Some(value("--store")?),
            "--repeat" => {
                let n = value("--repeat")?;
                match n.parse::<u64>() {
                    Ok(n) if n >= 1 => out.repeat = Some(n),
                    _ => {
                        return Err(usage_error(&format!(
                            "option '--repeat' needs a positive integer, got '{n}'"
                        )))
                    }
                }
            }
            "--jobs" => {
                let n = value("--jobs")?;
                match n.parse::<u64>() {
                    Ok(n) if n >= 1 => out.jobs = Some(n),
                    _ => {
                        return Err(usage_error(&format!(
                            "option '--jobs' needs a positive integer, got '{n}'"
                        )))
                    }
                }
            }
            "--help" | "-h" => {
                println!("{HELP}");
                return Err(ExitCode::SUCCESS);
            }
            _ if arg.starts_with('-') && arg != "-" => {
                return Err(usage_error(&format!("unknown option '{arg}'")));
            }
            _ if out.file.is_none() => out.file = Some(arg),
            _ => return Err(usage_error(&format!("unexpected argument '{arg}'"))),
        }
    }
    if let Some(store) = &out.store {
        if store == "-" || out.file.as_deref() == Some("-") {
            return Err(usage_error(
                "'--store' cannot read from stdin: pass a store file written by 'hxq index'",
            ));
        }
        if let Some(file) = &out.file {
            return Err(usage_error(&format!(
                "'--store' takes no FILE argument (documents come from the store), got '{file}'"
            )));
        }
        for (on, flag) in [
            (out.stream, "--stream"),
            (out.mark, "--mark"),
            (out.subhedge.is_some(), "--subhedge"),
            (out.explain, "--explain"),
            (out.metrics_json.is_some(), "--metrics-json"),
            (out.keep_attrs, "--attrs"),
        ] {
            if on {
                return Err(usage_error(&format!(
                    "'--store' is incompatible with '{flag}'"
                )));
            }
        }
    } else if out.file.is_none() {
        return Err(usage_error("no input file (use '-' for stdin)"));
    }
    if out.path.is_none() && out.phr.is_none() {
        return Err(usage_error("one of --path or --phr is required"));
    }
    if out.path.is_some() && out.phr.is_some() {
        return Err(usage_error("--path and --phr are mutually exclusive"));
    }
    if out.stream {
        // Genuinely unsupported combinations only: --mark and --subhedge
        // need the materialized tree, --explain/--repeat/--jobs drive the
        // materialized plan pipeline. --metrics-json and --trace work
        // streaming (they report the streaming run itself).
        for (on, flag) in [
            (out.mark, "--mark"),
            (out.subhedge.is_some(), "--subhedge"),
            (out.explain, "--explain"),
            (out.repeat.is_some(), "--repeat"),
            (out.jobs.is_some(), "--jobs"),
        ] {
            if on {
                return Err(usage_error(&format!(
                    "'--stream' is incompatible with '{flag}'"
                )));
            }
        }
    }
    if out.exists && out.mark {
        return Err(usage_error("'--exists' is incompatible with '--mark'"));
    }
    if out.count && out.exists {
        return Err(usage_error("'--count' is incompatible with '--exists'"));
    }
    if out.count && out.mark {
        return Err(usage_error("'--count' is incompatible with '--mark'"));
    }
    Ok(out)
}

fn print_report(report: &ExplainReport) {
    eprintln!("explain:");
    for p in &report.phases {
        eprintln!("  {:<18} {:>12.3} ms", p.name, p.wall_ns as f64 / 1e6);
    }
    eprintln!(
        "  components: {} (NHA states {}, DHA states {}, blowup {:.2}x, pruned {})",
        report.components.len(),
        report.nha_states,
        report.dha_states,
        report.blowup_ratio,
        report.pruned_states
    );
    eprintln!(
        "  M states {}, eq-classes {} (elder used {}, younger used {}), N states {}",
        report.m_states,
        report.eq_classes,
        report.elder_classes_used,
        report.younger_classes_used,
        report.n_states
    );
    eprintln!("  nodes {}, located {}", report.nodes, report.located);
}

/// `--repeat N [--jobs J]`: compile the query once, then evaluate it `n`
/// times reusing scratches (the warm plan path) — sequentially for
/// `jobs <= 1`, otherwise spread over `jobs` workers with one scratch
/// each. Prints the aggregate wall time of the evaluation loop —
/// compilation excluded — to stderr when `--repeat` was given.
fn locate_repeated(
    phr: &hedgex::core::Phr,
    subhedge: Option<&hedgex::core::Hre>,
    flat: &FlatHedge,
    repeat: Option<u64>,
    jobs: usize,
) -> Vec<u32> {
    let n = repeat.unwrap_or(1);
    let (hits, wall) = if let Some(e) = subhedge {
        let compiled = SelectQuery {
            subhedge: e.clone(),
            envelope: phr.clone(),
        }
        .compile();
        if jobs > 1 {
            let t = Instant::now();
            let mut runs = hedgex::par::run_scoped(
                jobs,
                n as usize,
                |_| SelectScratch::new(),
                |scratch, _| {
                    compiled.locate_into(flat, scratch);
                    scratch.located().to_vec()
                },
            );
            (runs.pop().unwrap_or_default(), t.elapsed())
        } else {
            let mut scratch = SelectScratch::new();
            let t = Instant::now();
            for _ in 0..n {
                compiled.locate_into(flat, &mut scratch);
            }
            (scratch.located().to_vec(), t.elapsed())
        }
    } else {
        let plan = Plan::compile(phr);
        if jobs > 1 {
            let t = Instant::now();
            let hits = ParallelEvaluator::new(jobs).repeat(&plan, flat, n as usize);
            (hits, t.elapsed())
        } else {
            let mut scratch = EvalScratch::new();
            let t = Instant::now();
            for _ in 0..n {
                plan.locate_into(flat, &mut scratch);
            }
            (scratch.located().to_vec(), t.elapsed())
        }
    };
    if repeat.is_some() {
        let total_ms = wall.as_secs_f64() * 1e3;
        let nodes_per_s = (flat.num_nodes() as u64 * n) as f64 / wall.as_secs_f64().max(1e-9);
        let workers = if jobs > 1 {
            format!(", {jobs} workers")
        } else {
            String::new()
        };
        eprintln!(
            "repeat: {n} runs in {total_ms:.3} ms ({:.3} ms/run, {nodes_per_s:.0} nodes/s{workers})",
            total_ms / n as f64
        );
    }
    hits
}

/// The mode-generic materialized path for `--count`/`--exists` when
/// nothing downstream needs node ids: one mode-independent [`Plan`], the
/// mode chosen per run. Composes with `--repeat`/`--jobs` exactly like
/// [`locate_repeated`] (warm scratch per worker, aggregate summary line).
fn eval_mode_repeated(
    phr: &hedgex::core::Phr,
    flat: &FlatHedge,
    mode: EvalMode,
    repeat: Option<u64>,
    jobs: usize,
) -> EvalOutcome {
    let n = repeat.unwrap_or(1);
    let plan = Plan::compile(phr);
    let (outcome, wall) = if jobs > 1 {
        let t = Instant::now();
        let mut runs = hedgex::par::run_scoped(
            jobs,
            n as usize,
            |_| EvalScratch::new(),
            |scratch, _| plan.eval_into(flat, scratch, mode),
        );
        (runs.pop().expect("at least one run"), t.elapsed())
    } else {
        let mut scratch = EvalScratch::new();
        let t = Instant::now();
        let mut out = plan.eval_into(flat, &mut scratch, mode);
        for _ in 1..n {
            out = plan.eval_into(flat, &mut scratch, mode);
        }
        (out, t.elapsed())
    };
    if repeat.is_some() {
        let total_ms = wall.as_secs_f64() * 1e3;
        let nodes_per_s = (flat.num_nodes() as u64 * n) as f64 / wall.as_secs_f64().max(1e-9);
        let workers = if jobs > 1 {
            format!(", {jobs} workers")
        } else {
            String::new()
        };
        eprintln!(
            "repeat: {n} runs in {total_ms:.3} ms ({:.3} ms/run, {nodes_per_s:.0} nodes/s{workers})",
            total_ms / n as f64
        );
    }
    outcome
}

/// `--stream`: evaluate push-based, straight off the parser's event
/// stream. The document is never materialized — path queries run the
/// single top-down DFA (and `--exists` aborts the parse at the first
/// match); PHR queries stream the first traversal and retain only the
/// per-node class table. Dewey output is byte-identical to the
/// materialized path.
fn run_stream(src: &str, args: &Args) -> Result<ExitCode, String> {
    use hedgex::stream::StreamStats;
    use hedgex_testkit::Json;

    let cfg = HedgeConfig {
        keep_text: true,
        keep_attrs: args.keep_attrs,
    };
    let mut ab = Alphabet::new();
    let hits_found: bool;
    let mut lines: Vec<String> = Vec::new();
    let mut phases: Vec<(&'static str, u64)> = Vec::new();
    let timed = |phases: &mut Vec<(&'static str, u64)>, name, f: &mut dyn FnMut()| {
        let t = Instant::now();
        f();
        phases.push((name, t.elapsed().as_nanos() as u64));
    };
    let stats: StreamStats;
    let located_count: usize;
    if let Some(p) = &args.path {
        let path = match parse_path(p, &mut ab) {
            Ok(p) => p,
            Err(e) => return Ok(usage_error(&format!("query: {e}"))),
        };
        let mut sink = None;
        timed(&mut phases, "compile", &mut || {
            sink = Some(
                PathStream::new(&path, &ab)
                    .exists(args.exists)
                    .count_only(args.count)
                    .collect_deweys(!args.exists && !args.count),
            )
        });
        let mut sink = sink.expect("compiled");
        let mut outcome = Ok(hedgex::xml::StreamOutcome::Finished);
        timed(&mut phases, "stream", &mut || {
            outcome = stream_xml(src, &mut ab, cfg, &mut sink)
        });
        outcome.map_err(|e| e.to_string())?;
        timed(&mut phases, "finish", &mut || {
            sink.finish();
        });
        stats = sink.stats();
        hits_found = sink.found();
        located_count = sink.count() as usize;
        for d in sink.deweys() {
            let dewey: Vec<String> = d.iter().map(u32::to_string).collect();
            lines.push(format!("/{}", dewey.join("/")));
        }
    } else {
        let phr = match parse_phr(args.phr.as_deref().expect("validated"), &mut ab) {
            Ok(p) => p,
            Err(e) => return Ok(usage_error(&format!("query: {e}"))),
        };
        let mut compiled = None;
        timed(&mut phases, "compile", &mut || {
            compiled = Some(CompiledPhr::compile(&phr))
        });
        let compiled = compiled.expect("compiled");
        let mut sink = PhrStream::new(&compiled);
        let mut outcome = Ok(hedgex::xml::StreamOutcome::Finished);
        timed(&mut phases, "stream", &mut || {
            outcome = stream_xml(src, &mut ab, cfg, &mut sink)
        });
        outcome.map_err(|e| e.to_string())?;
        // Mode-specific finishers: count never builds the match set,
        // exists stops the pass-2 scan at the first accepting state.
        let mut hits = Vec::new();
        let mut counted = 0u64;
        let mut found = false;
        timed(&mut phases, "finish", &mut || {
            if args.count {
                counted = sink.finish_count();
            } else if args.exists {
                found = sink.finish_exists();
            } else {
                hits = sink.finish().to_vec();
            }
        });
        stats = sink.stats();
        (hits_found, located_count) = if args.count {
            (counted > 0, counted as usize)
        } else if args.exists {
            (found, found as usize)
        } else {
            (!hits.is_empty(), hits.len())
        };
        for &n in &hits {
            let dewey: Vec<String> = sink.dewey(n).iter().map(u32::to_string).collect();
            lines.push(format!("/{}", dewey.join("/")));
        }
    }
    if let Some(path) = &args.metrics_json {
        // A streaming run has no automaton-size report — its story is the
        // event stream and the memory high-water marks, plus whatever the
        // obs registry gathered.
        let json = Json::obj([
            ("mode", Json::Str("stream".into())),
            (
                "phases",
                Json::Arr(
                    phases
                        .iter()
                        .map(|&(name, ns)| {
                            Json::obj([
                                ("name", Json::Str(name.into())),
                                ("wall_ns", Json::Num(ns as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("events", Json::Num(stats.events as f64)),
            ("depth_high_water", Json::Num(stats.depth_high_water as f64)),
            ("live_high_water", Json::Num(stats.live_high_water as f64)),
            ("early_exit", Json::Bool(stats.early_exit)),
            ("located", Json::Num(located_count as f64)),
            ("metrics", hedgex::obs::snapshot()),
        ]);
        std::fs::write(path, format!("{json}\n")).map_err(|e| format!("{path}: {e}"))?;
    }
    if args.exists {
        return Ok(if hits_found {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        });
    }
    if args.count {
        // The count is the answer: exit 0 even when it is 0.
        println!("{located_count}");
        return Ok(ExitCode::SUCCESS);
    }
    for line in lines {
        println!("{line}");
    }
    Ok(ExitCode::SUCCESS)
}

/// Write the obs span timeline as Chrome trace-event JSON. Works in every
/// mode (an obs-off build writes a valid empty trace), and runs *after*
/// evaluation so the file covers the whole run.
fn write_trace(path: &str) -> Result<(), String> {
    let trace = hedgex::obs::trace_json();
    std::fs::write(path, format!("{trace}\n")).map_err(|e| format!("{path}: {e}"))
}

/// Print/write the explain report wherever the run exits (plain, --exists,
/// --count): stderr for `--explain`, a JSON file for `--metrics-json`.
fn emit_report(args: &Args, report: Option<&ExplainReport>) -> Result<(), String> {
    if let Some(report) = report {
        if args.explain {
            print_report(report);
        }
        if let Some(path) = &args.metrics_json {
            std::fs::write(path, format!("{}\n", report.to_json()))
                .map_err(|e| format!("{path}: {e}"))?;
        }
    }
    Ok(())
}

fn run(args: Args) -> Result<ExitCode, String> {
    let code = run_query(&args)?;
    if let Some(path) = &args.trace {
        write_trace(path)?;
    }
    Ok(code)
}

/// `--store STORE`: answer the query over every document in a persistent
/// store. The plan carries its analysis facts, so documents missing a
/// required symbol are rejected by one postings probe each, and the
/// two-pass traversal visits only subtrees whose preorder range holds a
/// candidate node (a posting under one of the query's accepting labels).
fn run_store(store_path: &str, args: &Args) -> Result<ExitCode, String> {
    use hedgex::analyze::AnalyzedQuery;

    let store = DocumentStore::load(std::path::Path::new(store_path))
        .map_err(|e| format!("{store_path}: {e}"))?;
    // Queries parse against the store's alphabet so symbol ids line up
    // with the postings; genuinely new symbols intern past the end and
    // simply have empty postings everywhere.
    let mut ab = store.alphabet().clone();
    let (phr, facts) = if let Some(p) = &args.phr {
        let phr = match parse_phr(p, &mut ab) {
            Ok(p) => p,
            Err(e) => return Ok(usage_error(&format!("query: {e}"))),
        };
        // Analysis cost scales with the query's own symbols — fine for a
        // hand-written PHR.
        let facts = AnalyzedQuery::new(&phr, None).plan_facts(None);
        (phr, facts)
    } else {
        let path = match parse_path(args.path.as_deref().expect("validated"), &mut ab) {
            Ok(p) => p,
            Err(e) => return Ok(usage_error(&format!("query: {e}"))),
        };
        // The universal embedding mentions the whole corpus alphabet, so
        // automata-based analysis would blow up; the path's own structure
        // gives the same required-symbol facts for free.
        let facts = match path.required_syms() {
            Some(required_syms) => PlanFacts {
                known_empty: false,
                why_empty: None,
                required_syms,
            },
            None => PlanFacts {
                known_empty: true,
                why_empty: Some("path expression denotes no paths".into()),
                required_syms: Vec::new(),
            },
        };
        let syms: Vec<_> = ab.syms().collect();
        let vars: Vec<_> = ab.vars().collect();
        let z = ab.sub("hxq-universal");
        (path.to_phr(&syms, &vars, z), facts)
    };
    let plan = Plan::compile(&phr).with_facts(facts);
    let query = hedgex::store::StoreQuery::new(&store, &plan);
    let jobs = args.jobs.unwrap_or(1) as usize;
    let n = args.repeat.unwrap_or(1);

    let mode = if args.count {
        EvalMode::Count
    } else if args.exists {
        EvalMode::Exists
    } else {
        EvalMode::Locate
    };
    let t = Instant::now();
    let mut located: Vec<Vec<u32>> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    let mut exists: Vec<bool> = Vec::new();
    for _ in 0..n {
        match mode {
            EvalMode::Locate => located = query.locate_corpus(jobs),
            EvalMode::Count => counts = query.count_corpus(jobs),
            EvalMode::Exists => exists = query.exists_corpus(jobs),
        }
    }
    let wall = t.elapsed();
    if args.repeat.is_some() {
        let total_ms = wall.as_secs_f64() * 1e3;
        let nodes_per_s = (store.total_nodes() * n) as f64 / wall.as_secs_f64().max(1e-9);
        let workers = if jobs > 1 {
            format!(", {jobs} workers")
        } else {
            String::new()
        };
        eprintln!(
            "repeat: {n} runs in {total_ms:.3} ms ({:.3} ms/run, {nodes_per_s:.0} nodes/s{workers})",
            total_ms / n as f64
        );
    }
    match mode {
        EvalMode::Locate => {
            for (doc, hits) in store.docs().iter().zip(&located) {
                for &node in hits {
                    let dewey: Vec<String> =
                        doc.hedge().dewey(node).iter().map(u32::to_string).collect();
                    println!("{}:/{}", doc.name(), dewey.join("/"));
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        EvalMode::Count => {
            // The corpus total is the answer: exit 0 even when it is 0.
            println!("{}", counts.iter().sum::<u64>());
            Ok(ExitCode::SUCCESS)
        }
        EvalMode::Exists => Ok(if exists.iter().any(|&e| e) {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        }),
    }
}

fn run_query(args: &Args) -> Result<ExitCode, String> {
    if let Some(store_path) = &args.store {
        return run_store(store_path, args);
    }
    let src = match args.file.as_deref() {
        Some("-") => {
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .map_err(|e| format!("stdin: {e}"))?;
            s
        }
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        None => unreachable!("validated"),
    };

    if args.stream {
        return run_stream(&src, args);
    }

    let mut ab = Alphabet::new();
    let doc = parse_xml(&src).map_err(|e| e.to_string())?;
    let hedge = to_hedge(
        &doc,
        &mut ab,
        HedgeConfig {
            keep_text: true,
            keep_attrs: args.keep_attrs,
        },
    );
    let flat = FlatHedge::from_hedge(&hedge);

    let subhedge = match args.subhedge.as_deref() {
        Some(e1) => match hedgex::core::parse_hre(e1, &mut ab) {
            Ok(e) => Some(e),
            Err(e) => return Ok(usage_error(&format!("subhedge: {e}"))),
        },
        None => None,
    };

    let want_report = args.explain || args.metrics_json.is_some();
    // Reports, repeated runs, and worker pools all need the query as a
    // PHR plan.
    let want_phr = want_report || args.repeat.is_some() || args.jobs.is_some();

    // In count/exists mode with nothing downstream needing node ids, the
    // mode-generic plan path answers without materializing the match set.
    let mut outcome: Option<EvalOutcome> = None;

    // Envelope condition (and, through explain, the subhedge filter).
    let (hits, report): (Vec<u32>, Option<ExplainReport>) = {
        // The envelope as a PHR: --phr directly, --path via the Section 5
        // embedding (universal sibling conditions).
        let phr = if let Some(p) = &args.phr {
            match parse_phr(p, &mut ab) {
                Ok(p) => Some(p),
                Err(e) => return Ok(usage_error(&format!("query: {e}"))),
            }
        } else if want_phr {
            let path = match parse_path(args.path.as_deref().expect("validated"), &mut ab) {
                Ok(p) => p,
                Err(e) => return Ok(usage_error(&format!("query: {e}"))),
            };
            let syms: Vec<_> = ab.syms().collect();
            let vars: Vec<_> = ab.vars().collect();
            let z = ab.sub("hxq-universal");
            Some(path.to_phr(&syms, &vars, z))
        } else {
            None
        };
        match phr {
            Some(phr) => {
                let report = want_report.then(|| hedgex::explain(&phr, subhedge.as_ref(), &flat));
                let hits = if (args.count || args.exists) && subhedge.is_none() && report.is_none()
                {
                    let mode = if args.count {
                        EvalMode::Count
                    } else {
                        EvalMode::Exists
                    };
                    let jobs = args.jobs.unwrap_or(1) as usize;
                    outcome = Some(eval_mode_repeated(&phr, &flat, mode, args.repeat, jobs));
                    Vec::new()
                } else if args.repeat.is_some() || args.jobs.is_some() {
                    let jobs = args.jobs.unwrap_or(1) as usize;
                    locate_repeated(&phr, subhedge.as_ref(), &flat, args.repeat, jobs)
                } else if let Some(report) = &report {
                    report.hits.clone()
                } else {
                    let compiled = CompiledPhr::compile(&phr);
                    let mut hits = two_pass::locate(&compiled, &flat);
                    if let Some(e) = &subhedge {
                        let dha = hedgex::core::mark_down::compile_to_dha(e);
                        let marks = hedgex::core::mark_run(&dha, &flat);
                        hits.retain(|&n| marks[n as usize]);
                    }
                    hits
                };
                (hits, report)
            }
            None => {
                let path = match parse_path(args.path.as_deref().expect("validated"), &mut ab) {
                    Ok(p) => p,
                    Err(e) => return Ok(usage_error(&format!("query: {e}"))),
                };
                let mut hits = path.locate(&flat);
                if let Some(e) = &subhedge {
                    let dha = hedgex::core::mark_down::compile_to_dha(e);
                    let marks = hedgex::core::mark_run(&dha, &flat);
                    hits.retain(|&n| marks[n as usize]);
                }
                (hits, None)
            }
        }
    };

    // One (found, counted) pair whatever route produced the answer: the
    // mode-generic plan, a repeated run, a report, or plain locate.
    let (found, counted): (bool, u64) = match outcome {
        Some(EvalOutcome::Exists(b)) => (b, b as u64),
        Some(EvalOutcome::Count(n)) => (n > 0, n),
        Some(EvalOutcome::Located(n)) => (n > 0, n as u64),
        None => (!hits.is_empty(), hits.len() as u64),
    };

    if args.exists {
        // grep -q semantics: no output, exit 0 found / 1 not found.
        // (--explain/--metrics-json still report.)
        emit_report(args, report.as_ref())?;
        return Ok(if found {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        });
    }

    if args.count {
        // The count is the answer: exit 0 even when it is 0.
        println!("{counted}");
        emit_report(args, report.as_ref())?;
        return Ok(ExitCode::SUCCESS);
    }

    if args.mark {
        let mut marks = vec![false; flat.num_nodes()];
        for &n in &hits {
            marks[n as usize] = true;
        }
        print!("{}", write_xml(&flat, &ab, Some(&marks)));
    } else {
        for &n in &hits {
            let dewey: Vec<String> = flat.dewey(n).iter().map(u32::to_string).collect();
            println!("/{}", dewey.join("/"));
        }
    }

    emit_report(args, report.as_ref())?;
    Ok(ExitCode::SUCCESS)
}

struct CheckArgs {
    query: String,
    subhedge: Option<String>,
    schema: Option<String>,
    against: Option<String>,
    against_subhedge: Option<String>,
    metrics_json: Option<String>,
    trace: Option<String>,
}

fn parse_check_args(mut it: impl Iterator<Item = String>) -> Result<CheckArgs, ExitCode> {
    let mut out = CheckArgs {
        query: String::new(),
        subhedge: None,
        schema: None,
        against: None,
        against_subhedge: None,
        metrics_json: None,
        trace: None,
    };
    let mut have_query = false;
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| usage_error(&format!("option '{flag}' needs a value")))
        };
        match arg.as_str() {
            "--subhedge" => out.subhedge = Some(value("--subhedge")?),
            "--schema" => out.schema = Some(value("--schema")?),
            "--against" => out.against = Some(value("--against")?),
            "--against-subhedge" => out.against_subhedge = Some(value("--against-subhedge")?),
            "--metrics-json" => out.metrics_json = Some(value("--metrics-json")?),
            "--trace" => out.trace = Some(value("--trace")?),
            "--help" | "-h" => {
                println!("{HELP}");
                return Err(ExitCode::SUCCESS);
            }
            _ if arg.starts_with('-') => {
                return Err(usage_error(&format!("unknown option '{arg}'")));
            }
            _ if !have_query => {
                out.query = arg;
                have_query = true;
            }
            _ => return Err(usage_error(&format!("unexpected argument '{arg}'"))),
        }
    }
    if !have_query {
        return Err(usage_error("'check' needs a query (a PHR)"));
    }
    if out.against_subhedge.is_some() && out.against.is_none() {
        return Err(usage_error("'--against-subhedge' needs '--against'"));
    }
    Ok(out)
}

/// `hxq check`: static analysis only — parse, analyze, report. No document
/// is read and no evaluation pass runs; the metrics JSON therefore
/// contains exactly the phases `parse` and `analyze`.
fn run_check(args: CheckArgs) -> ExitCode {
    use hedgex::analyze::AnalyzedQuery;
    use hedgex::hedge::print_hedge;
    use hedgex_testkit::Json;

    let mut ab = Alphabet::new();
    let t_parse = Instant::now();
    let phr = match parse_phr(&args.query, &mut ab) {
        Ok(p) => p,
        Err(e) => return usage_error(&format!("query: {e}")),
    };
    let subhedge = match args.subhedge.as_deref() {
        Some(src) => match hedgex::core::parse_hre(src, &mut ab) {
            Ok(e) => Some(e),
            Err(e) => return usage_error(&format!("subhedge: {e}")),
        },
        None => None,
    };
    let schema = match args.schema.as_deref() {
        Some(src) => match hedgex::core::parse_hre(src, &mut ab) {
            Ok(e) => Some(e),
            Err(e) => return usage_error(&format!("schema: {e}")),
        },
        None => None,
    };
    let against = match args.against.as_deref() {
        Some(src) => match parse_phr(src, &mut ab) {
            Ok(p) => Some(p),
            Err(e) => return usage_error(&format!("against: {e}")),
        },
        None => None,
    };
    let against_subhedge = match args.against_subhedge.as_deref() {
        Some(src) => match hedgex::core::parse_hre(src, &mut ab) {
            Ok(e) => Some(e),
            Err(e) => return usage_error(&format!("against-subhedge: {e}")),
        },
        None => None,
    };
    let parse_ns = t_parse.elapsed().as_nanos() as u64;

    let t_analyze = Instant::now();
    let schema_dha = schema.as_ref().map(hedgex::core::mark_down::compile_to_dha);
    let q = AnalyzedQuery::new(&phr, subhedge.as_ref());
    let report = q.analyze(schema_dha.as_ref());
    let containment = against.as_ref().map(|p2| {
        let q2 = AnalyzedQuery::new(p2, against_subhedge.as_ref());
        (q.contained_in(&q2), q2.contained_in(&q))
    });
    let analyze_ns = t_analyze.elapsed().as_nanos() as u64;

    let sat = &report.satisfiability;
    if sat.satisfiable {
        let scope = if schema.is_some() {
            " (within the schema)"
        } else {
            ""
        };
        println!("check: satisfiable{scope}");
        if let Some(w) = &sat.witness {
            println!("witness: {}", print_hedge(w, &ab));
        }
        if !report.required.is_empty() {
            let names: Vec<&str> = report.required.iter().map(|&s| ab.sym_name(s)).collect();
            println!("required symbols: {}", names.join(" "));
        }
    } else {
        let why = sat
            .why_empty
            .map(|w| w.to_string())
            .unwrap_or_else(|| "unsatisfiable".to_string());
        println!("check: empty ({why})");
    }
    if let Some((fwd, back)) = &containment {
        match (fwd.contained, back.contained) {
            (true, true) => println!("containment: equivalent to the --against query"),
            (true, false) => println!("containment: strictly contained in the --against query"),
            (false, true) => println!("containment: strictly contains the --against query"),
            (false, false) => println!("containment: incomparable with the --against query"),
        }
        for (cex, dir) in [(fwd, "query \\ against"), (back, "against \\ query")] {
            if let Some(h) = &cex.counterexample {
                println!("counterexample ({dir}): {}", print_hedge(h, &ab));
            }
        }
    }

    if let Some(path) = &args.metrics_json {
        let phases = Json::Arr(vec![
            Json::obj([
                ("name", Json::Str("parse".into())),
                ("wall_ns", Json::Num(parse_ns as f64)),
            ]),
            Json::obj([
                ("name", Json::Str("analyze".into())),
                ("wall_ns", Json::Num(analyze_ns as f64)),
            ]),
        ]);
        let required = Json::Arr(
            report
                .required
                .iter()
                .map(|&s| Json::Str(ab.sym_name(s).to_string()))
                .collect(),
        );
        let mut fields = vec![
            ("phases", phases),
            ("satisfiable", Json::Bool(sat.satisfiable)),
            (
                "why_empty",
                match sat.why_empty {
                    Some(w) => Json::Str(w.to_string()),
                    None => Json::Null,
                },
            ),
            ("required", required),
        ];
        if let Some((fwd, back)) = &containment {
            fields.push(("contained_in_against", Json::Bool(fwd.contained)));
            fields.push(("contains_against", Json::Bool(back.contained)));
        }
        let json = Json::obj(fields);
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("hxq: {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = &args.trace {
        if let Err(e) = write_trace(path) {
            eprintln!("hxq: {e}");
            return ExitCode::FAILURE;
        }
    }

    if sat.satisfiable {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

struct IndexArgs {
    dir: String,
    out: String,
    keep_attrs: bool,
}

fn parse_index_args(mut it: impl Iterator<Item = String>) -> Result<IndexArgs, ExitCode> {
    let mut dir: Option<String> = None;
    let mut out: Option<String> = None;
    let mut keep_attrs = false;
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| usage_error(&format!("option '{flag}' needs a value")))
        };
        match arg.as_str() {
            "--out" => out = Some(value("--out")?),
            "--attrs" => keep_attrs = true,
            "--help" | "-h" => {
                println!("{HELP}");
                return Err(ExitCode::SUCCESS);
            }
            _ if arg.starts_with('-') => {
                return Err(usage_error(&format!("unknown option '{arg}'")));
            }
            _ if dir.is_none() => dir = Some(arg),
            _ => return Err(usage_error(&format!("unexpected argument '{arg}'"))),
        }
    }
    let Some(dir) = dir else {
        return Err(usage_error("'index' needs a directory of *.xml files"));
    };
    let Some(out) = out else {
        return Err(usage_error("'index' needs '--out STORE'"));
    };
    Ok(IndexArgs {
        dir,
        out,
        keep_attrs,
    })
}

/// `hxq index DIR --out STORE`: the parse-once half of the store workflow.
/// Every `*.xml` under DIR (sorted by name, so stores are reproducible) is
/// parsed against one shared alphabet, indexed, and written out.
fn run_index(args: IndexArgs) -> Result<ExitCode, String> {
    let entries = std::fs::read_dir(&args.dir).map_err(|e| format!("{}: {e}", args.dir))?;
    let mut files: Vec<(String, std::path::PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", args.dir))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("xml") {
            let name = entry.file_name().to_string_lossy().into_owned();
            files.push((name, path));
        }
    }
    if files.is_empty() {
        return Err(format!("{}: no *.xml files to index", args.dir));
    }
    files.sort();
    let cfg = HedgeConfig {
        keep_text: true,
        keep_attrs: args.keep_attrs,
    };
    let mut ab = Alphabet::new();
    let mut docs: Vec<(String, FlatHedge)> = Vec::with_capacity(files.len());
    for (name, path) in files {
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = parse_xml(&src).map_err(|e| format!("{name}: {e}"))?;
        let hedge = to_hedge(&doc, &mut ab, cfg);
        docs.push((name, FlatHedge::from_hedge(&hedge)));
    }
    let store = DocumentStore::build(ab, docs);
    store
        .save(std::path::Path::new(&args.out))
        .map_err(|e| format!("{}: {e}", args.out))?;
    println!(
        "indexed {} documents ({} nodes) into {}",
        store.len(),
        store.total_nodes(),
        args.out
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("check") {
        argv.next();
        return match parse_check_args(argv) {
            Ok(a) => run_check(a),
            Err(code) => code,
        };
    }
    if argv.peek().map(String::as_str) == Some("index") {
        argv.next();
        return match parse_index_args(argv) {
            Ok(a) => match run_index(a) {
                Ok(code) => code,
                Err(msg) => {
                    eprintln!("hxq: {msg}");
                    ExitCode::FAILURE
                }
            },
            Err(code) => code,
        };
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    match run(args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("hxq: {msg}");
            ExitCode::FAILURE
        }
    }
}

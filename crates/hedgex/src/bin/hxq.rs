//! `hxq` — query XML documents with extended path expressions.
//!
//! ```text
//! hxq --path  'article section* figure'  doc.xml     # classical path expr
//! hxq --phr   '[…;figure;…][…]'          doc.xml     # full PHR syntax
//! hxq --subhedge 'caption<$#text>' --path '…' doc.xml # select(e1, e2)
//! hxq … --mark                                        # print marked XML
//! hxq … -                                             # read from stdin
//! ```
//!
//! Prints the Dewey addresses of located nodes (one per line), or with
//! `--mark` the whole document with `hx:match="1"` on matches.

use std::io::Read;
use std::process::ExitCode;

use hedgex::prelude::*;

struct Args {
    path: Option<String>,
    phr: Option<String>,
    subhedge: Option<String>,
    mark: bool,
    keep_attrs: bool,
    file: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: hxq (--path EXPR | --phr EXPR) [--subhedge HRE] [--mark] [--attrs] FILE|-\n\
         \n\
         --path EXPR      classical path expression (root-to-node), e.g. 'article section* figure'\n\
         --phr EXPR       pointed hedge representation, e.g. '[e1 ; name ; e2][…]*'\n\
         --subhedge HRE   additionally require the node's content to match (select(e1, e2))\n\
         --mark           print the document with hx:match=\"1\" on located nodes\n\
         --attrs          map attributes to attr:name children (queryable)\n\
         FILE             an XML file, or '-' for stdin"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut out = Args {
        path: None,
        phr: None,
        subhedge: None,
        mark: false,
        keep_attrs: false,
        file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--path" => out.path = Some(it.next().ok_or_else(usage)?),
            "--phr" => out.phr = Some(it.next().ok_or_else(usage)?),
            "--subhedge" => out.subhedge = Some(it.next().ok_or_else(usage)?),
            "--mark" => out.mark = true,
            "--attrs" => out.keep_attrs = true,
            "--help" | "-h" => return Err(usage()),
            _ if out.file.is_none() => out.file = Some(arg),
            _ => return Err(usage()),
        }
    }
    if out.file.is_none() || (out.path.is_none() && out.phr.is_none()) {
        return Err(usage());
    }
    Ok(out)
}

fn run(args: Args) -> Result<(), String> {
    let src = match args.file.as_deref() {
        Some("-") => {
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .map_err(|e| format!("stdin: {e}"))?;
            s
        }
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        None => unreachable!("validated"),
    };

    let mut ab = Alphabet::new();
    let doc = parse_xml(&src).map_err(|e| e.to_string())?;
    let hedge = to_hedge(
        &doc,
        &mut ab,
        HedgeConfig {
            keep_text: true,
            keep_attrs: args.keep_attrs,
        },
    );
    let flat = FlatHedge::from_hedge(&hedge);

    // Envelope condition.
    let mut hits: Vec<u32> = if let Some(p) = &args.path {
        let path = parse_path(p, &mut ab).map_err(|e| e.to_string())?;
        path.locate(&flat)
    } else {
        let phr = parse_phr(args.phr.as_deref().expect("validated"), &mut ab)
            .map_err(|e| e.to_string())?;
        let compiled = CompiledPhr::compile(&phr);
        two_pass::locate(&compiled, &flat)
    };

    // Optional subhedge condition.
    if let Some(e1) = &args.subhedge {
        let e = hedgex::core::parse_hre(e1, &mut ab).map_err(|e| e.to_string())?;
        let dha = hedgex::core::mark_down::compile_to_dha(&e);
        let marks = hedgex::core::mark_run(&dha, &flat);
        hits.retain(|&n| marks[n as usize]);
    }

    if args.mark {
        let mut marks = vec![false; flat.num_nodes()];
        for &n in &hits {
            marks[n as usize] = true;
        }
        print!("{}", write_xml(&flat, &ab, Some(&marks)));
    } else {
        for &n in &hits {
            let dewey: Vec<String> = flat.dewey(n).iter().map(u32::to_string).collect();
            println!("/{}", dewey.join("/"));
        }
    }
    eprintln!("{} node(s) located", hits.len());
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("hxq: {msg}");
            ExitCode::FAILURE
        }
    }
}

//! # hedgex — Extended Path Expressions for XML, batteries included
//!
//! Facade crate re-exporting the whole stack of the PODS 2001
//! reproduction (Murata, *Extended Path Expressions for XML*):
//!
//! * [`automata`] — symbolic string automata (NFA/DFA/regex; the horizontal
//!   machinery every hedge automaton delegates to);
//! * [`hedge`] — hedges, pointed hedges, parsing, generators;
//! * [`ha`] — hedge automata (deterministic & non-deterministic),
//!   determinization, products, analyses;
//! * [`core`] — the paper's contribution: hedge regular expressions,
//!   pointed hedge representations, selection queries, two-pass linear
//!   evaluation, match-identifying automata, schema transformation;
//! * [`analyze`] — static query analysis: satisfiability (absolute and
//!   schema-relative), containment/equivalence with counterexamples,
//!   required-symbol extraction, plan facts;
//! * [`xml`] — XML parsing/serialization and synthetic corpora;
//! * [`baseline`] — quadratic/interpretive baselines for benchmarking;
//! * [`par`] — scoped worker pool and parallel corpus/plan evaluation;
//! * [`stream`] — push-based streaming evaluation: answer queries during
//!   the XML parse with memory bounded by document depth;
//! * [`store`] — persistent document corpora: versioned, checksummed
//!   on-disk stores with a sortable-path structural index and
//!   index-pruned query evaluation.
//!
//! See `examples/quickstart.rs` for a guided tour, and the `hedgex-core`
//! crate docs for the paper-to-module map.

#![forbid(unsafe_code)]

pub use hedgex_analyze as analyze;
pub use hedgex_automata as automata;
pub use hedgex_baseline as baseline;
pub use hedgex_core as core;
pub use hedgex_ha as ha;
pub use hedgex_hedge as hedge;
pub use hedgex_obs as obs;
pub use hedgex_par as par;
pub use hedgex_store as store;
pub use hedgex_stream as stream;
pub use hedgex_xml as xml;

pub mod explain;
pub use explain::{explain, ExplainReport};

/// Everything most programs need, one import away.
pub mod prelude {
    pub use hedgex_analyze::{analyze, AnalysisCache, AnalyzedQuery, QueryAnalysis};
    pub use hedgex_core::hre::parse_hre;
    pub use hedgex_core::path_expr::parse_path;
    pub use hedgex_core::phr::parse_phr;
    pub use hedgex_core::query::{CompiledSelect, SelectQuery, SelectScratch};
    pub use hedgex_core::schema::transform_select;
    pub use hedgex_core::two_pass;
    pub use hedgex_core::{
        CompiledPhr, EvalMode, EvalOutcome, EvalScratch, Plan, PlanCache, PlanFacts,
        SharedPlanCache,
    };
    pub use hedgex_ha::{determinize, Dha, Nha};
    pub use hedgex_hedge::{parse_hedge, Alphabet, FlatHedge, Hedge, PointedHedge};
    pub use hedgex_par::ParallelEvaluator;
    pub use hedgex_store::{DocumentStore, StoreError, StoreQuery, StructIndex};
    pub use hedgex_stream::{replay_flat, stream_xml, HedgeSink, PathStream, PhrStream};
    pub use hedgex_xml::{parse_xml, to_hedge, write_xml, HedgeConfig};
}

//! Query-plan explain: run the full PHR pipeline on one document and
//! report what every phase cost and what every construction produced.
//!
//! [`explain`] measures each phase directly (wall-clock via
//! `std::time::Instant`, sizes read off the constructed artifacts), so the
//! report is deterministic in its structural fields and works identically
//! with the `obs` feature on or off. The ambient `hedgex-obs` registry
//! snapshot is attached as a best-effort `metrics` section when
//! instrumentation is compiled in.

use std::time::Instant;

use hedgex_core::mark_down::{compile_to_dha, mark_run};
use hedgex_core::phr::Phr;
use hedgex_core::two_pass;
use hedgex_core::{CompiledPhr, EvalScratch, Hre, Plan};
use hedgex_hedge::{FlatHedge, NodeId};
use hedgex_obs as obs;
use hedgex_testkit::Json;

/// One timed phase of the pipeline.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Phase name (`compile`, `subhedge_compile`, `first_pass`, …).
    pub name: &'static str,
    /// Wall time in nanoseconds.
    pub wall_ns: u64,
}

/// Sizes of one compiled PHR component (one elder or younger HRE).
#[derive(Debug, Clone)]
pub struct ComponentSizes {
    /// NHA states after Lemma 1 compilation.
    pub nha_states: u32,
    /// DHA states after Theorem 1 determinization.
    pub dha_states: u32,
    /// DHA states after dead-state pruning and minimization (what the
    /// product is actually built from; equals `dha_states` when pruning
    /// was disabled or removed nothing).
    pub dha_reduced: u32,
}

/// The structured result of [`explain`].
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// Per-phase wall times, in execution order.
    pub phases: Vec<Phase>,
    /// Per-component automaton sizes (elder, younger per triplet).
    pub components: Vec<ComponentSizes>,
    /// Summed NHA states across components.
    pub nha_states: u64,
    /// Summed DHA states across components.
    pub dha_states: u64,
    /// Determinization blowup: summed DHA states / summed NHA states.
    pub blowup_ratio: f64,
    /// States of the shared product automaton `M` (Theorem 4).
    pub m_states: u32,
    /// Number of ≡-classes saturating the lifted final sets.
    pub eq_classes: usize,
    /// Distinct elder-word classes the first traversal actually assigned.
    pub elder_classes_used: usize,
    /// Distinct younger-word classes the first traversal actually assigned.
    pub younger_classes_used: usize,
    /// Mirror-automaton states materialized by the second traversal.
    pub n_states: usize,
    /// Component DHA states removed by dead-state pruning before the
    /// product was built (summed over components).
    pub pruned_states: u64,
    /// Nodes in the document.
    pub nodes: usize,
    /// Located nodes (after the optional subhedge filter).
    pub located: usize,
    /// The located nodes themselves, in document order.
    pub hits: Vec<NodeId>,
    /// Snapshot of the obs registry (`{"enabled": false}` when obs is
    /// compiled out).
    pub metrics: Json,
    /// Chrome trace-event timeline of the spans recorded so far (empty
    /// array when obs is compiled out) — the same events `hxq --trace`
    /// writes, captured by the report's `trace` phase.
    pub trace: Json,
}

impl ExplainReport {
    /// Render as JSON (round-trips through `hedgex_testkit::Json::parse`).
    pub fn to_json(&self) -> Json {
        let phases = Json::Arr(
            self.phases
                .iter()
                .map(|p| {
                    Json::obj([
                        ("name", Json::Str(p.name.to_string())),
                        ("wall_ns", Json::Num(p.wall_ns as f64)),
                    ])
                })
                .collect(),
        );
        let components = Json::Arr(
            self.components
                .iter()
                .map(|c| {
                    Json::obj([
                        ("nha_states", Json::Num(f64::from(c.nha_states))),
                        ("dha_states", Json::Num(f64::from(c.dha_states))),
                        ("dha_reduced", Json::Num(f64::from(c.dha_reduced))),
                    ])
                })
                .collect(),
        );
        Json::obj([
            ("phases", phases),
            ("components", components),
            ("nha_states", Json::Num(self.nha_states as f64)),
            ("dha_states", Json::Num(self.dha_states as f64)),
            ("blowup_ratio", Json::Num(self.blowup_ratio)),
            ("m_states", Json::Num(f64::from(self.m_states))),
            ("eq_classes", Json::Num(self.eq_classes as f64)),
            (
                "elder_classes_used",
                Json::Num(self.elder_classes_used as f64),
            ),
            (
                "younger_classes_used",
                Json::Num(self.younger_classes_used as f64),
            ),
            ("n_states", Json::Num(self.n_states as f64)),
            ("pruned_states", Json::Num(self.pruned_states as f64)),
            ("nodes", Json::Num(self.nodes as f64)),
            ("located", Json::Num(self.located as f64)),
            (
                "hits",
                Json::Arr(self.hits.iter().map(|&n| Json::Num(f64::from(n))).collect()),
            ),
            ("metrics", self.metrics.clone()),
            ("trace", self.trace.clone()),
        ])
    }
}

fn timed<T>(phases: &mut Vec<Phase>, name: &'static str, f: impl FnOnce() -> T) -> T {
    let t = Instant::now();
    let out = f();
    phases.push(Phase {
        name,
        wall_ns: t.elapsed().as_nanos() as u64,
    });
    out
}

/// Run the PHR pipeline on `doc`, measuring every phase: compile the
/// envelope (and optional subhedge condition), run both traversals of
/// Algorithm 1, and report automaton sizes, class usage, timings, and the
/// match set. The match set is exactly what `two_pass::locate` (plus the
/// subhedge mark filter) produces.
pub fn explain(phr: &Phr, subhedge: Option<&Hre>, doc: &FlatHedge) -> ExplainReport {
    let _span = obs::span("hedgex.explain");
    let mut phases = Vec::new();

    let compiled = timed(&mut phases, "compile", || {
        Plan::from_compiled(CompiledPhr::compile(phr))
    });
    let marks = subhedge.map(|e| {
        let dha = timed(&mut phases, "subhedge_compile", || compile_to_dha(e));
        timed(&mut phases, "subhedge_mark", || mark_run(&dha, doc))
    });

    let fp = timed(&mut phases, "first_pass", || {
        two_pass::first_pass(&compiled, doc)
    });
    let mut hits = timed(&mut phases, "second_pass", || {
        two_pass::second_pass(&compiled, doc, &fp)
    });

    // Warm run, reported separately from the cold phases above: the
    // compile-once / run-many contract evaluates through a shared [`Plan`]
    // and a caller-owned scratch. The first (unmeasured) pass sizes the
    // buffers; the timed pass is the steady-state, allocation-free cost.
    let mut scratch = EvalScratch::new();
    compiled.locate_into(doc, &mut scratch);
    let warm_hits = timed(&mut phases, "warm_run", || {
        compiled.locate_into(doc, &mut scratch).len()
    });
    debug_assert_eq!(warm_hits, hits.len(), "warm run must reproduce cold hits");

    if let Some(marks) = &marks {
        hits.retain(|&n| marks[n as usize]);
    }

    // Timeline export is a phase of its own: rendering the span ring is
    // real work on large runs, and reporting it as a phase keeps the
    // total-time accounting honest.
    let trace = timed(&mut phases, "trace", obs::trace_json);

    let distinct = |classes: &[u32]| {
        let mut v: Vec<u32> = classes.to_vec();
        v.sort_unstable();
        v.dedup();
        v.len()
    };

    let nha_states = compiled.stats.total_nha_states();
    let dha_states = compiled.stats.total_dha_states();
    ExplainReport {
        phases,
        components: compiled
            .stats
            .components
            .iter()
            .zip(&compiled.stats.reduced_components)
            .map(|(&(n, d), &r)| ComponentSizes {
                nha_states: n,
                dha_states: d,
                dha_reduced: r,
            })
            .collect(),
        nha_states,
        dha_states,
        blowup_ratio: dha_states as f64 / nha_states.max(1) as f64,
        m_states: compiled.m.num_states(),
        eq_classes: compiled.classes.num_classes(),
        elder_classes_used: distinct(&fp.elder_class),
        younger_classes_used: distinct(&fp.younger_class),
        n_states: compiled.n_states_materialized(),
        pruned_states: compiled.stats.pruned_states(),
        nodes: doc.num_nodes(),
        located: hits.len(),
        hits,
        metrics: obs::snapshot(),
        trace,
    }
}

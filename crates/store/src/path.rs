//! Sortable structural paths: one byte-string per node whose lexicographic
//! order equals preorder (document order).
//!
//! A node's path is the concatenation of the encoded 0-based child indices
//! on the way down from its root. Each index is one *component*:
//!
//! | index range        | encoding                   | example        |
//! |--------------------|----------------------------|----------------|
//! | `0‥31`             | one base32 digit `0‥9A‥V`  | `17` → `H`     |
//! | `32‥2¹⁰−1`         | `W` + 2 base32 digits      | `32` → `W10`   |
//! | `2¹⁰‥2²⁰−1`        | `X` + 4 base32 digits      |                |
//! | `2²⁰‥2³⁰−1`        | `Y` + 6 base32 digits      |                |
//! | `2³⁰‥2⁴⁰−1`        | `Z` + 8 base32 digits      |                |
//!
//! Components are *prefix-free* (the first byte determines the length) and
//! *order-preserving* (escape letters `W<X<Y<Z` sort above the plain
//! digits `0‥V`, and within an escape the fixed-width big-endian digits
//! compare numerically). Prefix-free order-preserving components make path
//! concatenation order-preserving too, which buys the two properties
//! everything downstream rests on:
//!
//! 1. **sorted-by-path = preorder** — the path array stored in `NodeId`
//!    order is already sorted, no permutation needed;
//! 2. **descendants are one range** — every descendant of `P` extends it
//!    by a component starting in `0‥Z`, digits stop at `V`, so the
//!    descendant set is exactly the half-open interval `[P·"0", P·"ZW")`.
//!
//! The second property is what [`StructIndex`](crate::store::StructIndex)
//! materializes as its `subtree_end` array (one `partition_point` per node
//! at build time, O(1) per query afterwards).

use hedgex_hedge::{FlatHedge, NodeId};

/// The base32 digit alphabet: `'0'..='9'` then `'A'..='V'`.
const DIGITS: &[u8; 32] = b"0123456789ABCDEFGHIJKLMNOPQRSTUV";

/// Largest index encodable (`Z` escape: 8 digits = 40 bits).
pub const MAX_COMPONENT: u64 = (1 << 40) - 1;

/// Append the encoding of one child index to `out`.
///
/// # Panics
/// If `idx > MAX_COMPONENT` — unreachable for `u32`-arena hedges.
pub fn encode_component(idx: u64, out: &mut Vec<u8>) {
    let digits = |idx: u64, n: u32, out: &mut Vec<u8>| {
        for d in (0..n).rev() {
            out.push(DIGITS[((idx >> (5 * d)) & 31) as usize]);
        }
    };
    match idx {
        0..=31 => out.push(DIGITS[idx as usize]),
        32..=1023 => {
            out.push(b'W');
            digits(idx, 2, out);
        }
        1024..=0xF_FFFF => {
            out.push(b'X');
            digits(idx, 4, out);
        }
        0x10_0000..=0x3FFF_FFFF => {
            out.push(b'Y');
            digits(idx, 6, out);
        }
        0x4000_0000..=MAX_COMPONENT => {
            out.push(b'Z');
            digits(idx, 8, out);
        }
        _ => panic!("child index {idx} exceeds the sortable-path component range"),
    }
}

/// Decode one component at the front of `bytes`: `(index, bytes consumed)`,
/// or `None` if the front is not a well-formed component.
pub fn decode_component(bytes: &[u8]) -> Option<(u64, usize)> {
    let digit = |b: u8| -> Option<u64> {
        match b {
            b'0'..=b'9' => Some(u64::from(b - b'0')),
            b'A'..=b'V' => Some(u64::from(b - b'A') + 10),
            _ => None,
        }
    };
    let &first = bytes.first()?;
    let ndigits = match first {
        b'W' => 2,
        b'X' => 4,
        b'Y' => 6,
        b'Z' => 8,
        _ => return Some((digit(first)?, 1)),
    };
    if bytes.len() < 1 + ndigits {
        return None;
    }
    let mut v = 0u64;
    for &b in &bytes[1..=ndigits] {
        v = (v << 5) | digit(b)?;
    }
    Some((v, 1 + ndigits))
}

/// The sortable path of every node, flattened: `bytes[off[n]..off[n+1]]`
/// is node `n`'s path. Built in one preorder sweep (each node copies its
/// parent's path and appends one component).
pub fn node_paths(h: &FlatHedge) -> (Vec<u8>, Vec<u32>) {
    let n = h.num_nodes();
    let mut bytes: Vec<u8> = Vec::with_capacity(n * 2);
    let mut off: Vec<u32> = Vec::with_capacity(n + 1);
    off.push(0);
    // 0-based child index of each node within its sibling group.
    let mut child_idx: Vec<u64> = vec![0; n];
    for id in h.preorder() {
        if let Some(next) = h.next_sibling(id) {
            child_idx[next as usize] = child_idx[id as usize] + 1;
        }
        if let Some(p) = h.parent(id) {
            bytes.extend_from_within(off[p as usize] as usize..off[p as usize + 1] as usize);
        }
        encode_component(child_idx[id as usize], &mut bytes);
        off.push(bytes.len() as u32);
    }
    (bytes, off)
}

/// The preorder range of `node`'s strict descendants, found by binary
/// search over the sorted path array: the interval `[P·"0", P·"ZW")`.
/// Returns `(lo, hi)` as node ids with `lo..hi` the descendants.
pub fn descendants_range(bytes: &[u8], off: &[u32], node: NodeId) -> (NodeId, NodeId) {
    let n = off.len() - 1;
    let path_of = |i: usize| &bytes[off[i] as usize..off[i + 1] as usize];
    let p = path_of(node as usize);
    // Compare path(i) against P with `extra` appended, without
    // materializing the bound.
    let lt_bound = |i: usize, extra: &[u8]| -> bool {
        let q = path_of(i);
        let head = q.len().min(p.len());
        match q[..head].cmp(&p[..head]) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => &q[head..] < extra,
        }
    };
    let lo = partition(n, |i| lt_bound(i, b"0"));
    let hi = partition(n, |i| lt_bound(i, b"ZW"));
    (lo as NodeId, hi as NodeId)
}

/// `partition_point` over `0..n` (the path array is sorted by property 1).
fn partition(n: usize, pred: impl Fn(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use hedgex_hedge::{parse_hedge, Alphabet};

    #[test]
    fn component_boundaries_encode_and_round_trip() {
        // The escape boundaries and their neighbours.
        let cases: &[(u64, &str)] = &[
            (0, "0"),
            (9, "9"),
            (10, "A"),
            (31, "V"),
            (32, "W10"),
            (1023, "WVV"),
            (1024, "X0100"),
            ((1 << 20) - 1, "XVVVV"),
            (1 << 20, "Y010000"),
            ((1 << 30) - 1, "YVVVVVV"),
            (1 << 30, "Z01000000"),
            (MAX_COMPONENT, "ZVVVVVVVV"),
        ];
        for &(idx, want) in cases {
            let mut out = Vec::new();
            encode_component(idx, &mut out);
            assert_eq!(out, want.as_bytes(), "encoding of {idx}");
            assert_eq!(decode_component(&out), Some((idx, out.len())));
        }
        assert_eq!(decode_component(b""), None);
        assert_eq!(decode_component(b"W1"), None, "truncated escape");
        assert_eq!(decode_component(b"w"), None, "foreign byte");
    }

    #[test]
    fn component_encoding_is_order_preserving() {
        let probes: Vec<u64> = (0..40)
            .flat_map(|b| {
                let v = 1u64 << b;
                [v - 1, v, v + 1]
            })
            .filter(|&v| v <= MAX_COMPONENT)
            .collect();
        let mut prev: Option<(u64, Vec<u8>)> = None;
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        for idx in sorted {
            let mut enc = Vec::new();
            encode_component(idx, &mut enc);
            if let Some((pidx, penc)) = prev {
                assert!(penc < enc, "{pidx} vs {idx} break lexicographic order");
            }
            prev = Some((idx, enc));
        }
    }

    #[test]
    fn paths_sort_in_preorder_and_ranges_equal_subtrees() {
        let mut ab = Alphabet::new();
        let h = parse_hedge("b a<a<b $x> b> a<b b<a a> $x>", &mut ab).unwrap();
        let f = FlatHedge::from_hedge(&h);
        let (bytes, off) = node_paths(&f);
        assert_eq!(off.len(), f.num_nodes() + 1);
        // Property 1: NodeId order is already sorted order.
        for i in 0..f.num_nodes() - 1 {
            let a = &bytes[off[i] as usize..off[i + 1] as usize];
            let b = &bytes[off[i + 1] as usize..off[i + 2] as usize];
            assert!(a < b, "paths out of order at node {i}");
        }
        // Property 2: the P0..PZW range is exactly the preorder subtree.
        for id in f.preorder() {
            let (lo, hi) = descendants_range(&bytes, &off, id);
            assert_eq!(lo, id + 1, "descendants of {id} start right after it");
            let mut expect_hi = id + 1;
            while (expect_hi as usize) < f.num_nodes() {
                let mut anc = Some(expect_hi);
                let mut inside = false;
                while let Some(a) = anc {
                    if a == id {
                        inside = true;
                        break;
                    }
                    anc = f.parent(a);
                }
                if !inside {
                    break;
                }
                expect_hi += 1;
            }
            assert_eq!(hi, expect_hi, "descendants of {id} end");
        }
    }

    #[test]
    fn wide_hedges_cross_the_first_escape() {
        // 40 roots: indices 0..39 cross the 31→32 digit/escape boundary.
        let mut ab = Alphabet::new();
        let src = vec!["a"; 40].join(" ");
        let f = FlatHedge::from_hedge(&parse_hedge(&src, &mut ab).unwrap());
        let (bytes, off) = node_paths(&f);
        for i in 0..39 {
            let a = &bytes[off[i] as usize..off[i + 1] as usize];
            let b = &bytes[off[i + 1] as usize..off[i + 2] as usize];
            assert!(a < b, "root {i} out of order");
        }
        let (lo, hi) = descendants_range(&bytes, &off, 35);
        assert_eq!((lo, hi), (36, 36), "leaves have empty ranges");
    }
}

//! The on-disk corpus: layout, checksummed load, and the per-document
//! structural index.
//!
//! ## File layout (all integers little-endian)
//!
//! ```text
//! offset 0   magic  b"HXST"
//!        4   version u32                  (currently 1)
//!        8   payload length u64           (bytes after the header)
//!        16  checksum u64                 (FNV-1a 64 over the payload)
//!        24  payload:
//!              alphabet   3 × [count u32, count × (len u32, utf-8 bytes)]
//!                         (symbols, variables, substitution symbols)
//!              doc count  u32
//!              per document:
//!                name       len u32, utf-8 bytes
//!                nodes      count u32, count × (tag u8, label u32, parent u32)
//!                postings   (num_syms+1) × offset u32, total u32 node ids
//!                paths      byte len u32, bytes, (nodes+1) × offset u32
//! ```
//!
//! The node records are the *entire* document — `(label, parent)` per node
//! in preorder — because the arena's sibling/child links are derivable
//! (`FlatHedge::from_parts` revalidates and relinks on load). The index
//! blocks are stored so a reader never recomputes them, but the load path
//! rebuilds both from the freshly validated hedge and compares: a store
//! whose index disagrees with its own documents is rejected as corrupt,
//! so pruned evaluation never trusts unverified ranges.
//!
//! Every load error is a typed [`StoreError`] carrying the byte offset at
//! which the problem was detected; no input, however mangled, panics.

use hedgex_hedge::flat::{FlatLabel, NIL};
use hedgex_hedge::{Alphabet, FlatHedge, NodeId, SubId, SymId, VarId};
use hedgex_obs as obs;

use crate::path::{descendants_range, node_paths};

/// File magic: "HedgeX STore".
pub const MAGIC: [u8; 4] = *b"HXST";

/// Current format version.
pub const VERSION: u32 = 1;

/// Header size in bytes (magic + version + payload length + checksum).
pub const HEADER_LEN: usize = 24;

/// A typed, position-carrying load/save error. Loading never panics: any
/// deviation from the format — short reads, foreign magic, bad checksums,
/// structurally impossible payloads — maps to one of these.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error (save or load).
    Io(std::io::Error),
    /// The input ended before a read that began at `offset` could finish.
    Truncated {
        /// Where the unfinished read began.
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available there.
        available: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic {
        /// Always 0; carried for uniformity.
        offset: usize,
    },
    /// A version this build does not read.
    UnsupportedVersion {
        /// Offset of the version field.
        offset: usize,
        /// The version found.
        found: u32,
    },
    /// The header's payload length disagrees with the actual byte count.
    LengthMismatch {
        /// Offset of the length field.
        offset: usize,
        /// Length the header declares.
        declared: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The payload does not hash to the header's checksum.
    ChecksumMismatch {
        /// Offset of the checksum field.
        offset: usize,
        /// Checksum the header declares.
        stored: u64,
        /// Checksum of the payload as read.
        computed: u64,
    },
    /// The payload parsed but is structurally impossible.
    Corrupt {
        /// Offset of the offending bytes.
        offset: usize,
        /// What was wrong.
        what: &'static str,
    },
}

impl StoreError {
    /// The byte offset the error points at (`None` for I/O errors).
    pub fn offset(&self) -> Option<usize> {
        match *self {
            StoreError::Io(_) => None,
            StoreError::Truncated { offset, .. }
            | StoreError::BadMagic { offset }
            | StoreError::UnsupportedVersion { offset, .. }
            | StoreError::LengthMismatch { offset, .. }
            | StoreError::ChecksumMismatch { offset, .. }
            | StoreError::Corrupt { offset, .. } => Some(offset),
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Truncated {
                offset,
                needed,
                available,
            } => write!(
                f,
                "store truncated at byte {offset}: needed {needed} bytes, {available} available"
            ),
            StoreError::BadMagic { offset } => {
                write!(f, "not a hedgex store (bad magic at byte {offset})")
            }
            StoreError::UnsupportedVersion { offset, found } => write!(
                f,
                "unsupported store version {found} at byte {offset} (this build reads {VERSION})"
            ),
            StoreError::LengthMismatch {
                offset,
                declared,
                actual,
            } => write!(
                f,
                "store length field at byte {offset} declares {declared} payload bytes, found {actual}"
            ),
            StoreError::ChecksumMismatch {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "store checksum mismatch at byte {offset}: stored {stored:#018x}, computed {computed:#018x}"
            ),
            StoreError::Corrupt { offset, what } => {
                write!(f, "corrupt store at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// FNV-1a 64 over raw bytes (the payload checksum).
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// The structural index
// ---------------------------------------------------------------------------

/// The per-document structural index: sortable paths, per-symbol postings,
/// and the subtree extents the paths induce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructIndex {
    /// `postings[postings_off[s]..postings_off[s+1]]` = sorted preorder
    /// node ids labelled `SymId(s)`; length `num_syms + 1`.
    postings_off: Vec<u32>,
    /// The flattened postings lists.
    postings: Vec<NodeId>,
    /// Flattened sortable paths (see [`crate::path`]).
    path_bytes: Vec<u8>,
    /// `path_bytes[path_off[n]..path_off[n+1]]` = node `n`'s path; length
    /// `num_nodes + 1`.
    path_off: Vec<u32>,
    /// One past the last preorder descendant of each node — the
    /// `P0..PZW` range scan, materialized once at build time.
    subtree_end: Vec<NodeId>,
}

impl StructIndex {
    /// Index one document against an alphabet of `num_syms` symbols.
    pub fn build(h: &FlatHedge, num_syms: usize) -> StructIndex {
        let n = h.num_nodes();
        // Postings by counting sort: dense by SymId, preorder within.
        let mut counts = vec![0u32; num_syms + 1];
        for id in h.preorder() {
            if let FlatLabel::Sym(a) = h.label(id) {
                counts[a.0 as usize + 1] += 1;
            }
        }
        for s in 0..num_syms {
            counts[s + 1] += counts[s];
        }
        let postings_off = counts.clone();
        let mut cursor = counts;
        let mut postings = vec![0 as NodeId; postings_off[num_syms] as usize];
        for id in h.preorder() {
            if let FlatLabel::Sym(a) = h.label(id) {
                postings[cursor[a.0 as usize] as usize] = id;
                cursor[a.0 as usize] += 1;
            }
        }
        let (path_bytes, path_off) = node_paths(h);
        // The subtree extents are exactly the sortable-path descendant
        // ranges (binary search per node; validated against each other by
        // the property suite).
        let mut subtree_end: Vec<NodeId> = Vec::with_capacity(n);
        for id in h.preorder() {
            let (_, hi) = descendants_range(&path_bytes, &path_off, id);
            subtree_end.push(hi);
        }
        StructIndex {
            postings_off,
            postings,
            path_bytes,
            path_off,
            subtree_end,
        }
    }

    /// The sorted preorder node ids labelled `a` (empty for symbols beyond
    /// the indexed alphabet — e.g. interned only by a later query).
    pub fn postings(&self, a: SymId) -> &[NodeId] {
        let s = a.0 as usize;
        if s + 1 >= self.postings_off.len() {
            return &[];
        }
        &self.postings[self.postings_off[s] as usize..self.postings_off[s + 1] as usize]
    }

    /// The sortable path of node `n`.
    pub fn path(&self, n: NodeId) -> &[u8] {
        &self.path_bytes[self.path_off[n as usize] as usize..self.path_off[n as usize + 1] as usize]
    }

    /// One past the last preorder descendant of each node.
    pub fn subtree_end(&self) -> &[NodeId] {
        &self.subtree_end
    }

    /// The descendant range of `n` by sortable-path binary search — the
    /// `[P·"0", P·"ZW")` scan itself, bypassing the materialized extents.
    pub fn descendants_by_path(&self, n: NodeId) -> (NodeId, NodeId) {
        descendants_range(&self.path_bytes, &self.path_off, n)
    }
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// One stored document: its name (for CLI output), its hedge, its index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredDoc {
    name: String,
    hedge: FlatHedge,
    index: StructIndex,
}

impl StoredDoc {
    /// The document's name (its file name at `hxq index` time).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The document itself.
    pub fn hedge(&self) -> &FlatHedge {
        &self.hedge
    }

    /// The document's structural index.
    pub fn index(&self) -> &StructIndex {
        &self.index
    }
}

/// A persistent corpus: one shared [`Alphabet`] and any number of indexed
/// documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocumentStore {
    alphabet: Alphabet,
    docs: Vec<StoredDoc>,
}

impl DocumentStore {
    /// Build a store from documents flattened against a shared alphabet.
    /// Indexing happens here (once); queries afterwards only read.
    pub fn build(alphabet: Alphabet, docs: Vec<(String, FlatHedge)>) -> DocumentStore {
        let num_syms = alphabet.num_syms();
        let docs = docs
            .into_iter()
            .map(|(name, hedge)| {
                let index = StructIndex::build(&hedge, num_syms);
                StoredDoc { name, hedge, index }
            })
            .collect();
        DocumentStore { alphabet, docs }
    }

    /// The shared alphabet (clone it to parse queries against the same
    /// symbol ids the postings use).
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The stored documents, in insertion order.
    pub fn docs(&self) -> &[StoredDoc] {
        &self.docs
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Total node count across the corpus.
    pub fn total_nodes(&self) -> u64 {
        self.docs.iter().map(|d| d.hedge.num_nodes() as u64).sum()
    }

    // -- serialization ------------------------------------------------------

    /// Serialize to the versioned, checksummed byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        let ab = &self.alphabet;
        write_names(
            &mut payload,
            (0..ab.num_syms()).map(|i| ab.sym_name(SymId(i as u32))),
        );
        write_names(
            &mut payload,
            (0..ab.num_vars()).map(|i| ab.var_name(VarId(i as u32))),
        );
        write_names(
            &mut payload,
            (0..ab.num_subs()).map(|i| ab.sub_name(SubId(i as u32))),
        );
        write_u32(&mut payload, self.docs.len() as u32);
        for doc in &self.docs {
            write_u32(&mut payload, doc.name.len() as u32);
            payload.extend_from_slice(doc.name.as_bytes());
            let h = &doc.hedge;
            write_u32(&mut payload, h.num_nodes() as u32);
            for id in h.preorder() {
                let (tag, label) = match h.label(id) {
                    FlatLabel::Sym(a) => (0u8, a.0),
                    FlatLabel::Var(x) => (1u8, x.0),
                    FlatLabel::Subst(z) => (2u8, z.0),
                };
                payload.push(tag);
                write_u32(&mut payload, label);
                write_u32(&mut payload, h.parent(id).unwrap_or(NIL));
            }
            let ix = &doc.index;
            for &o in &ix.postings_off {
                write_u32(&mut payload, o);
            }
            write_u32(&mut payload, ix.postings.len() as u32);
            for &p in &ix.postings {
                write_u32(&mut payload, p);
            }
            write_u32(&mut payload, ix.path_bytes.len() as u32);
            payload.extend_from_slice(&ix.path_bytes);
            for &o in &ix.path_off {
                write_u32(&mut payload, o);
            }
        }
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a_bytes(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parse the byte format. Never panics; every malformation returns a
    /// positioned [`StoreError`].
    pub fn from_bytes(buf: &[u8]) -> Result<DocumentStore, StoreError> {
        let _span = obs::span("store.load");
        let mut r = Reader { buf, pos: 0 };
        let magic = r.bytes(4)?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic { offset: 0 });
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion {
                offset: 4,
                found: version,
            });
        }
        let declared = r.u64()?;
        let stored_sum = r.u64()?;
        let payload = &buf[HEADER_LEN..];
        if declared != payload.len() as u64 {
            return Err(StoreError::LengthMismatch {
                offset: 8,
                declared,
                actual: payload.len() as u64,
            });
        }
        let computed = fnv1a_bytes(payload);
        if computed != stored_sum {
            return Err(StoreError::ChecksumMismatch {
                offset: 16,
                stored: stored_sum,
                computed,
            });
        }

        let mut alphabet = Alphabet::new();
        read_names(&mut r, |n| alphabet.sym(n).0)?;
        read_names(&mut r, |n| alphabet.var(n).0)?;
        read_names(&mut r, |n| alphabet.sub(n).0)?;
        let num_syms = alphabet.num_syms() as u32;
        let num_vars = alphabet.num_vars() as u32;
        let num_subs = alphabet.num_subs() as u32;

        let doc_count = r.u32()? as usize;
        let mut docs = Vec::new();
        r.check_items(doc_count, 8)?;
        for _ in 0..doc_count {
            let name_len = r.u32()? as usize;
            let name_off = r.pos;
            let name = std::str::from_utf8(r.bytes(name_len)?)
                .map_err(|_| StoreError::Corrupt {
                    offset: name_off,
                    what: "document name is not valid UTF-8",
                })?
                .to_string();

            let node_count = r.u32()? as usize;
            r.check_items(node_count, 9)?;
            let nodes_off = r.pos;
            let mut records: Vec<(FlatLabel, NodeId)> = Vec::with_capacity(node_count);
            for _ in 0..node_count {
                let tag = r.u8()?;
                let label = r.u32()?;
                let parent = r.u32()?;
                let label = match tag {
                    0 if label < num_syms => FlatLabel::Sym(SymId(label)),
                    1 if label < num_vars => FlatLabel::Var(VarId(label)),
                    2 if label < num_subs || label == SubId::ETA.0 => {
                        FlatLabel::Subst(SubId(label))
                    }
                    0..=2 => {
                        return Err(StoreError::Corrupt {
                            offset: nodes_off,
                            what: "node label id out of the alphabet's range",
                        })
                    }
                    _ => {
                        return Err(StoreError::Corrupt {
                            offset: nodes_off,
                            what: "unknown node label tag",
                        })
                    }
                };
                records.push((label, parent));
            }
            let hedge = FlatHedge::from_parts(records).map_err(|_| StoreError::Corrupt {
                offset: nodes_off,
                what: "node records are not a preorder forest",
            })?;

            let index_off = r.pos;
            r.check_items(num_syms as usize + 1, 4)?;
            let mut postings_off = Vec::with_capacity(num_syms as usize + 1);
            for _ in 0..=num_syms {
                postings_off.push(r.u32()?);
            }
            let total = r.u32()? as usize;
            r.check_items(total, 4)?;
            let mut postings = Vec::with_capacity(total);
            for _ in 0..total {
                postings.push(r.u32()?);
            }
            let path_len = r.u32()? as usize;
            let path_bytes = r.bytes(path_len)?.to_vec();
            r.check_items(node_count + 1, 4)?;
            let mut path_off = Vec::with_capacity(node_count + 1);
            for _ in 0..=node_count {
                path_off.push(r.u32()?);
            }
            // Rather than trust offsets/ids piecemeal, rebuild the index
            // from the freshly validated hedge and demand byte equality —
            // O(n), and pruned evaluation afterwards needs no defensive
            // checks at all.
            let index = StructIndex::build(&hedge, num_syms as usize);
            if index.postings_off != postings_off
                || index.postings != postings
                || index.path_bytes != path_bytes
                || index.path_off != path_off
            {
                return Err(StoreError::Corrupt {
                    offset: index_off,
                    what: "structural index disagrees with its document",
                });
            }
            docs.push(StoredDoc { name, hedge, index });
        }
        if r.pos != buf.len() {
            return Err(StoreError::Corrupt {
                offset: r.pos,
                what: "trailing bytes after the last document",
            });
        }
        obs::counter_add("store.load.docs", docs.len() as u64);
        Ok(DocumentStore { alphabet, docs })
    }

    /// Write the store to a file.
    pub fn save(&self, path: &std::path::Path) -> Result<(), StoreError> {
        let _span = obs::span("store.save");
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Read a store from a file.
    pub fn load(path: &std::path::Path) -> Result<DocumentStore, StoreError> {
        let bytes = std::fs::read(path)?;
        DocumentStore::from_bytes(&bytes)
    }
}

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_names<'a>(out: &mut Vec<u8>, names: impl ExactSizeIterator<Item = &'a str>) {
    write_u32(out, names.len() as u32);
    for name in names {
        write_u32(out, name.len() as u32);
        out.extend_from_slice(name.as_bytes());
    }
}

fn read_names(r: &mut Reader<'_>, mut intern: impl FnMut(&str) -> u32) -> Result<(), StoreError> {
    let count = r.u32()? as usize;
    r.check_items(count, 4)?;
    for i in 0..count {
        let len = r.u32()? as usize;
        let off = r.pos;
        let name = std::str::from_utf8(r.bytes(len)?).map_err(|_| StoreError::Corrupt {
            offset: off,
            what: "alphabet name is not valid UTF-8",
        })?;
        if intern(name) != i as u32 {
            return Err(StoreError::Corrupt {
                offset: off,
                what: "duplicate name in the alphabet table",
            });
        }
    }
    Ok(())
}

/// A positioned, bounds-checked little-endian reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let available = self.buf.len() - self.pos;
        if n > available {
            return Err(StoreError::Truncated {
                offset: self.pos,
                needed: n,
                available,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    /// Guard an upcoming `count`-item read (each at least `min_size`
    /// bytes) *before* allocating: a corrupted count can therefore demand
    /// at most the input's own size, never an absurd allocation.
    fn check_items(&self, count: usize, min_size: usize) -> Result<(), StoreError> {
        let available = self.buf.len() - self.pos;
        let needed = count.saturating_mul(min_size);
        if needed > available {
            return Err(StoreError::Truncated {
                offset: self.pos,
                needed,
                available,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hedgex_hedge::parse_hedge;
    use std::collections::BTreeMap;

    fn sample_store() -> DocumentStore {
        let mut ab = Alphabet::new();
        let docs: Vec<(String, FlatHedge)> =
            ["b a<a<b $x> b>", "a a<b b<a>> b", "", "b<b<b<a $y>>>"]
                .iter()
                .enumerate()
                .map(|(i, src)| {
                    (
                        format!("doc{i}.xml"),
                        FlatHedge::from_hedge(&parse_hedge(src, &mut ab).unwrap()),
                    )
                })
                .collect();
        DocumentStore::build(ab, docs)
    }

    #[test]
    fn round_trips_through_bytes() {
        let store = sample_store();
        let bytes = store.to_bytes();
        let loaded = DocumentStore::from_bytes(&bytes).unwrap();
        assert_eq!(loaded, store);
        assert_eq!(loaded.len(), 4);
        assert_eq!(loaded.total_nodes(), store.total_nodes());
    }

    #[test]
    fn postings_are_sorted_and_complete() {
        let store = sample_store();
        for doc in store.docs() {
            let h = doc.hedge();
            let mut by_sym: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
            for id in h.preorder() {
                if let FlatLabel::Sym(a) = h.label(id) {
                    by_sym.entry(a.0).or_default().push(id);
                }
            }
            for s in 0..store.alphabet().num_syms() as u32 {
                let want = by_sym.remove(&s).unwrap_or_default();
                assert_eq!(doc.index().postings(SymId(s)), &want[..], "{}", doc.name());
            }
            // Out-of-range symbols have empty postings, not panics.
            assert_eq!(doc.index().postings(SymId(999)), &[] as &[NodeId]);
        }
    }

    #[test]
    fn subtree_ends_match_path_ranges_and_parents() {
        let store = sample_store();
        for doc in store.docs() {
            let h = doc.hedge();
            let ix = doc.index();
            for id in h.preorder() {
                let (lo, hi) = ix.descendants_by_path(id);
                assert_eq!(lo, id + 1);
                assert_eq!(hi, ix.subtree_end()[id as usize]);
                // Everything in the range really descends from id.
                for d in lo..hi {
                    let mut anc = h.parent(d);
                    while let Some(a) = anc {
                        if a == id {
                            break;
                        }
                        anc = h.parent(a);
                    }
                    assert_eq!(anc, Some(id), "node {d} not under {id}");
                }
            }
        }
    }

    #[test]
    fn header_errors_are_positioned() {
        let store = sample_store();
        let good = store.to_bytes();

        assert!(matches!(
            DocumentStore::from_bytes(&[]),
            Err(StoreError::Truncated {
                offset: 0,
                needed: 4,
                available: 0
            })
        ));
        let mut bad = good.clone();
        bad[0] = b'Z';
        assert!(matches!(
            DocumentStore::from_bytes(&bad),
            Err(StoreError::BadMagic { offset: 0 })
        ));
        let mut bad = good.clone();
        bad[4] = 9;
        assert!(matches!(
            DocumentStore::from_bytes(&bad),
            Err(StoreError::UnsupportedVersion {
                offset: 4,
                found: 9
            })
        ));
        // Cut the payload short: the declared length no longer matches.
        let cut = &good[..good.len() - 3];
        assert!(matches!(
            DocumentStore::from_bytes(cut),
            Err(StoreError::LengthMismatch { offset: 8, .. })
        ));
        // Flip a payload byte: caught by the checksum before parsing.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        assert!(matches!(
            DocumentStore::from_bytes(&bad),
            Err(StoreError::ChecksumMismatch { offset: 16, .. })
        ));
    }

    #[test]
    fn payload_corruption_with_fixed_checksum_is_still_typed() {
        // Re-seal the checksum after corrupting the payload, so the parse
        // itself must catch the damage.
        let reseal = |mut bytes: Vec<u8>| -> Vec<u8> {
            let sum = fnv1a_bytes(&bytes[HEADER_LEN..]);
            bytes[16..24].copy_from_slice(&sum.to_le_bytes());
            bytes
        };
        let store = sample_store();
        let good = store.to_bytes();

        // Explode a count field: guarded before any allocation.
        let mut bad = good.clone();
        bad[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            DocumentStore::from_bytes(&reseal(bad)),
            Err(StoreError::Truncated { .. })
        ));
        // Declare one fewer payload byte than present.
        let mut bad = good.clone();
        let declared = u64::from_le_bytes(bad[8..16].try_into().unwrap()) - 1;
        bad[8..16].copy_from_slice(&declared.to_le_bytes());
        assert!(matches!(
            DocumentStore::from_bytes(&bad),
            Err(StoreError::LengthMismatch { offset: 8, .. })
        ));
    }

    #[test]
    fn empty_store_round_trips() {
        let store = DocumentStore::build(Alphabet::new(), Vec::new());
        let loaded = DocumentStore::from_bytes(&store.to_bytes()).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.total_nodes(), 0);
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let store = sample_store();
        let dir = std::env::temp_dir().join(format!("hedgex-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.hxst");
        store.save(&path).unwrap();
        let loaded = DocumentStore::load(&path).unwrap();
        assert_eq!(loaded, store);
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(matches!(DocumentStore::load(&path), Err(StoreError::Io(_))));
    }
}

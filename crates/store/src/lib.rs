//! # hedgex-store — persistent documents, structural indexes, pruned queries
//!
//! The evaluators in `hedgex-core` are linear per document — but a corpus
//! served repeatedly re-parses and re-traverses every document on every
//! query. This crate is the "pre-compute structure once, answer by range
//! scan" layer on top:
//!
//! * [`DocumentStore`] — an on-disk corpus of [`FlatHedge`]s plus their
//!   shared [`Alphabet`]. The dense preorder arena is already
//!   serialization-shaped: one `(label, parent)` record per node is the
//!   whole document, and `FlatHedge::from_parts` validates and relinks it
//!   at load. The file format is versioned and checksummed; loading
//!   truncated or corrupted bytes returns a typed [`StoreError`] with a
//!   byte-accurate position — never a panic.
//! * [`StructIndex`] — per stored document: a compact *sortable path* per
//!   node (base32 child indices with `W/X/Y/Z` length escapes, so
//!   lexicographic order over paths equals preorder and "descendants of
//!   `P`" is the single range `P0..PZW`), per-symbol postings
//!   (`SymId` → sorted preorder node ids), and the materialized subtree
//!   extents those paths induce.
//! * [`StoreQuery`] — index-pruned evaluation: a plan's required symbols
//!   are checked against postings emptiness (O(1) per document instead of
//!   a label scan), the candidate set is the union of the
//!   `CompiledPhr::match_syms` postings, and the two-pass traversal visits
//!   only the ancestors-closure of candidate ranges
//!   (`hedgex_core::two_pass::eval_pruned_into`). Documents whose
//!   candidate set is empty skip evaluation — including the bottom-up
//!   automaton run — entirely.
//!
//! Observability: `store.{docs_pruned,ranges_skipped,postings_hits}`
//! counters and `store.{save,load,query.doc}` spans.
//!
//! [`FlatHedge`]: hedgex_hedge::FlatHedge
//! [`Alphabet`]: hedgex_hedge::Alphabet
//! [`CompiledPhr::match_syms`]: hedgex_core::CompiledPhr::match_syms

#![forbid(unsafe_code)]

pub mod path;
pub mod query;
pub mod store;

pub use query::StoreQuery;
pub use store::{DocumentStore, StoreError, StoredDoc, StructIndex};

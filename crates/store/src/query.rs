//! Index-pruned query evaluation over a [`DocumentStore`].
//!
//! A [`StoreQuery`] binds one compiled [`Plan`] to a store and answers it
//! per-document (or corpus-wide, in parallel) using the structural index
//! to do strictly less work than the plain evaluators:
//!
//! 1. **Postings-emptiness reject** — if analysis proved the query needs
//!    symbol `a` (`PlanFacts::required_syms`) and the document's postings
//!    for `a` are empty, the answer is zero without touching a single
//!    node. This replaces the `lacks_required_sym` label scan with O(1)
//!    probes per document.
//! 2. **Candidate-range pruning** — `CompiledPhr::match_syms` gives the
//!    only labels an accepting node can carry; the union of their postings
//!    (already preorder-sorted per symbol) is the candidate set, and the
//!    two-pass traversal then skips every subtree whose preorder range —
//!    `subtree_end` from the sortable-path index — contains no candidate.
//!    An empty candidate set skips the document entirely, including the
//!    bottom-up automaton run.
//!
//! Both prunes are sound over-approximations (the pruned traversal still
//! runs the full automata over everything it visits), so indexed answers
//! are bit-identical to the unpruned evaluators — the property suite
//! asserts exactly that across the mode matrix.

use hedgex_core::{EvalMode, EvalOutcome, EvalScratch, Plan, PruneInfo};
use hedgex_hedge::{NodeId, SymId};
use hedgex_obs as obs;
use hedgex_par::ParallelEvaluator;

use crate::store::{DocumentStore, StoredDoc};

/// One plan bound to one store, ready to answer in any [`EvalMode`].
pub struct StoreQuery<'a> {
    store: &'a DocumentStore,
    plan: &'a Plan,
    /// Labels an accepting node can carry (`None` = no bound usable).
    match_syms: Option<Vec<SymId>>,
}

impl<'a> StoreQuery<'a> {
    /// Bind `plan` to `store`. The accepting-label bound is computed once
    /// here and reused across every document.
    pub fn new(store: &'a DocumentStore, plan: &'a Plan) -> StoreQuery<'a> {
        let match_syms = plan.match_syms();
        StoreQuery {
            store,
            plan,
            match_syms,
        }
    }

    /// The bound store.
    pub fn store(&self) -> &'a DocumentStore {
        self.store
    }

    /// The accepting-label bound, if one exists.
    pub fn match_syms(&self) -> Option<&[SymId]> {
        self.match_syms.as_deref()
    }

    /// Answer the plan on one stored document. `candidates` is caller
    /// scratch (cleared here) so corpus sweeps reuse one allocation; on
    /// return for [`EvalMode::Locate`], the match set is in
    /// `scratch.located()`.
    pub fn eval_doc_into(
        &self,
        doc: &StoredDoc,
        scratch: &mut EvalScratch,
        candidates: &mut Vec<NodeId>,
        mode: EvalMode,
    ) -> EvalOutcome {
        let _span = obs::span("store.query.doc");
        let ix = doc.index();
        let prune_all = PruneInfo {
            candidates: &[],
            subtree_end: ix.subtree_end(),
        };
        // Prune 1: a required symbol with empty postings proves "no
        // matches" — answer through the pruned path with zero candidates
        // (uniform zero outcome, located cleared, no automaton run).
        if self
            .plan
            .missing_required_sym(|s| !ix.postings(s).is_empty())
        {
            obs::counter_inc("store.docs_pruned");
            let (outcome, _) = self
                .plan
                .eval_pruned_into(doc.hedge(), &prune_all, scratch, mode);
            return outcome;
        }
        let Some(ms) = &self.match_syms else {
            // No usable accepting-label bound: fall back to the plain
            // evaluator (identical answers, no pruning).
            return self.plan.eval_into(doc.hedge(), scratch, mode);
        };
        // Prune 2: candidates = union of the accepting labels' postings.
        // Each list is preorder-sorted and the lists are disjoint (one
        // label per node), so a sort of the concatenation is cheap.
        candidates.clear();
        for &a in ms {
            candidates.extend_from_slice(ix.postings(a));
        }
        obs::counter_add("store.postings_hits", candidates.len() as u64);
        candidates.sort_unstable();
        if candidates.is_empty() {
            obs::counter_inc("store.docs_pruned");
        }
        let prune = PruneInfo {
            candidates,
            subtree_end: ix.subtree_end(),
        };
        let (outcome, skipped) = self
            .plan
            .eval_pruned_into(doc.hedge(), &prune, scratch, mode);
        obs::counter_add("store.ranges_skipped", skipped);
        outcome
    }

    /// Locate matches in every stored document, `jobs`-way parallel.
    /// Result `i` is the preorder match set of document `i`.
    pub fn locate_corpus(&self, jobs: usize) -> Vec<Vec<NodeId>> {
        self.map_corpus(jobs, EvalMode::Locate, |scratch, _| {
            scratch.located().to_vec()
        })
    }

    /// Count matches in every stored document, `jobs`-way parallel.
    pub fn count_corpus(&self, jobs: usize) -> Vec<u64> {
        self.map_corpus(jobs, EvalMode::Count, |_, outcome| match outcome {
            EvalOutcome::Count(c) => c,
            other => unreachable!("count mode returned {other:?}"),
        })
    }

    /// Does any match exist, per stored document? `jobs`-way parallel.
    pub fn exists_corpus(&self, jobs: usize) -> Vec<bool> {
        self.map_corpus(jobs, EvalMode::Exists, |_, outcome| match outcome {
            EvalOutcome::Exists(e) => e,
            other => unreachable!("exists mode returned {other:?}"),
        })
    }

    fn map_corpus<T: Send>(
        &self,
        jobs: usize,
        mode: EvalMode,
        finish: impl Fn(&EvalScratch, EvalOutcome) -> T + Sync,
    ) -> Vec<T> {
        let docs = self.store.docs();
        ParallelEvaluator::new(jobs).map_with_scratch(docs.len(), |scratch, i| {
            let mut candidates = Vec::new();
            let outcome = self.eval_doc_into(&docs[i], scratch, &mut candidates, mode);
            finish(scratch, outcome)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DocumentStore;
    use hedgex_core::parse_phr;
    use hedgex_hedge::{parse_hedge, Alphabet, FlatHedge};

    fn store_and_alphabet() -> (DocumentStore, Alphabet) {
        let mut ab = Alphabet::new();
        let docs: Vec<(String, FlatHedge)> = [
            "b a<a<b $x> b>",
            "a a<b b<a>> b",
            "b b<b> $x",
            "",
            "a<a<a>>",
        ]
        .iter()
        .enumerate()
        .map(|(i, src)| {
            (
                format!("doc{i}.xml"),
                FlatHedge::from_hedge(&parse_hedge(src, &mut ab).unwrap()),
            )
        })
        .collect();
        let store = DocumentStore::build(ab.clone(), docs);
        (store, ab)
    }

    fn plan_for(query: &str, ab: &mut Alphabet) -> Plan {
        let phr = parse_phr(query, ab).unwrap();
        Plan::compile(&phr)
    }

    #[test]
    fn indexed_corpus_answers_match_plain_evaluation() {
        let (store, mut ab) = store_and_alphabet();
        for query in [
            "[ε ; a ; ε]",
            "[ε ; b ; ε]",
            "[a* ; b ; a*]",
            "([ε ; a ; ε]|[ε ; b ; ε])*",
        ] {
            let plan = plan_for(query, &mut ab);
            let q = StoreQuery::new(&store, &plan);
            let mut scratch = EvalScratch::new();
            for (i, doc) in store.docs().iter().enumerate() {
                let plain = plan.locate_into(doc.hedge(), &mut scratch).to_vec();
                let mut cands = Vec::new();
                let outcome = q.eval_doc_into(doc, &mut scratch, &mut cands, EvalMode::Locate);
                assert_eq!(scratch.located(), &plain[..], "{query} on doc {i}");
                assert_eq!(outcome, EvalOutcome::Located(plain.len()));
                let count = q.eval_doc_into(doc, &mut scratch, &mut cands, EvalMode::Count);
                assert_eq!(count, EvalOutcome::Count(plain.len() as u64));
                let exists = q.eval_doc_into(doc, &mut scratch, &mut cands, EvalMode::Exists);
                assert_eq!(exists, EvalOutcome::Exists(!plain.is_empty()));
            }
            for jobs in [1, 2] {
                let located = q.locate_corpus(jobs);
                let counts = q.count_corpus(jobs);
                let exists = q.exists_corpus(jobs);
                for (i, doc) in store.docs().iter().enumerate() {
                    let plain = plan.locate_into(doc.hedge(), &mut scratch).to_vec();
                    assert_eq!(located[i], plain, "{query} locate doc {i} jobs {jobs}");
                    assert_eq!(counts[i], plain.len() as u64);
                    assert_eq!(exists[i], !plain.is_empty());
                }
            }
        }
    }

    #[test]
    fn queries_over_unknown_symbols_prune_whole_documents() {
        let (store, mut ab) = store_and_alphabet();
        // `c` appears in no stored document: every candidate set is empty.
        let plan = plan_for("[ε ; c ; ε]", &mut ab);
        let q = StoreQuery::new(&store, &plan);
        assert_eq!(
            q.match_syms().map(<[SymId]>::len),
            Some(1),
            "one accepting label"
        );
        assert_eq!(q.count_corpus(1), vec![0; store.len()]);
        assert_eq!(q.exists_corpus(2), vec![false; store.len()]);
    }
}

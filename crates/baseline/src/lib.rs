//! Baseline evaluators for the benchmark suite.
//!
//! The paper's headline claim is that extended path expressions evaluate in
//! time *linear* in the number of nodes (Sections 6–7). These baselines
//! realize the obvious alternatives the claim is measured against:
//!
//! * [`quadratic_locate_phr`] — per-node evaluation with the *same*
//!   compiled automata as Algorithm 1, but restarted from scratch at every
//!   candidate node (recomputing sibling state words and the ancestor
//!   path). This is what "path expressions + per-node checking" costs
//!   without the two-traversal sharing: Θ(n²) on broad/deep documents.
//! * [`interpretive_locate_phr`] — the declarative Definition-19 matcher
//!   (no automata at all): backtracking regex interpretation per node,
//!   exponential in pattern nesting — the "ad-hoc evaluation" the
//!   introduction contrasts with the formal-model approach.
//! * [`quadratic_marks`] — Theorem 3's marking recomputed per node instead
//!   of shared bottom-up.

#![forbid(unsafe_code)]

use hedgex_core::phr::Phr;
use hedgex_core::phr_compile::CompiledPhr;
use hedgex_ha::Dha;
use hedgex_hedge::flat::FlatLabel;
use hedgex_hedge::{FlatHedge, NodeId};

/// Per-node PHR evaluation with compiled automata but no sharing: for every
/// node, recompute the states of all sibling subtrees on the path to the
/// root, their ≡-classes, and the `N` run. Θ(n²) overall.
pub fn quadratic_locate_phr(phr: &CompiledPhr, h: &FlatHedge) -> Vec<NodeId> {
    h.preorder()
        .filter(|&n| matches!(h.label(n), FlatLabel::Sym(_)) && node_matches(phr, h, n))
        .collect()
}

fn node_matches(phr: &CompiledPhr, h: &FlatHedge, n: NodeId) -> bool {
    // Decomposition of the envelope, bottom-up; evaluate N top-down, so
    // collect the path first.
    let mut path = vec![n];
    let mut cur = n;
    while let Some(p) = h.parent(cur) {
        path.push(p);
        cur = p;
    }
    path.reverse(); // root → n
    let mut s = phr.n_start();
    for &node in &path {
        let FlatLabel::Sym(a) = h.label(node) else {
            return false;
        };
        // Recompute sibling state words from scratch (the whole point of
        // this baseline: no sharing across nodes).
        let c1 = {
            let mut c = phr.classes.start();
            for sib in h.elder_siblings(node) {
                let tree = h.to_tree(sib);
                c = phr.classes.step(c, &phr.m.state_of_tree(&tree));
            }
            c
        };
        let c2 = {
            let mut c = phr.classes.start();
            for sib in h.younger_siblings(node) {
                let tree = h.to_tree(sib);
                c = phr.classes.step(c, &phr.m.state_of_tree(&tree));
            }
            c
        };
        s = phr.n_step(s, phr.signature(c1, a, c2));
    }
    phr.n_accepting(s)
}

/// The declarative Definition-19 evaluator: no compilation, backtracking
/// interpretation of the hedge regular expressions at every node.
pub fn interpretive_locate_phr(phr: &Phr, h: &FlatHedge) -> Vec<NodeId> {
    phr.locate_naive(h)
}

/// Theorem 3 marks recomputed per node: run the content automaton from
/// scratch on each node's subhedge. Θ(n²) on deep documents.
pub fn quadratic_marks(dha: &Dha, h: &FlatHedge) -> Vec<bool> {
    h.preorder()
        .map(|n| {
            if !matches!(h.label(n), FlatLabel::Sym(_)) {
                return false;
            }
            let f = dha.finals();
            let mut s = f.start();
            for c in h.children(n) {
                let tree = h.to_tree(c);
                s = f.step(s, &dha.state_of_tree(&tree));
            }
            f.is_accepting(s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hedgex_core::hre::parse_hre;
    use hedgex_core::mark_down::{compile_to_dha, mark_run};
    use hedgex_core::phr::parse_phr;
    use hedgex_core::two_pass;
    use hedgex_ha::enumerate::enumerate_hedges;
    use hedgex_hedge::Alphabet;

    #[test]
    fn quadratic_phr_agrees_with_two_pass() {
        let mut ab = Alphabet::new();
        for src in [
            "[ε ; a ; ε]",
            "[a* ; a ; a*]",
            "[ε ; a ; b][b ; a ; ε]",
            "[a<%z>*^z ; b ; a<%z>*^z]*",
        ] {
            let phr = parse_phr(src, &mut ab).unwrap();
            let compiled = CompiledPhr::compile(&phr);
            let syms: Vec<_> = ab.syms().collect();
            for h in enumerate_hedges(&syms, &[], 5) {
                let f = FlatHedge::from_hedge(&h);
                assert_eq!(
                    quadratic_locate_phr(&compiled, &f),
                    two_pass::locate(&compiled, &f),
                    "{src} on {h:?}"
                );
            }
        }
    }

    #[test]
    fn quadratic_marks_agree_with_mark_run() {
        let mut ab = Alphabet::new();
        let e = parse_hre("(a<b*>|b)*", &mut ab).unwrap();
        let dha = compile_to_dha(&e);
        let syms: Vec<_> = ab.syms().collect();
        for h in enumerate_hedges(&syms, &[], 5) {
            let f = FlatHedge::from_hedge(&h);
            assert_eq!(quadratic_marks(&dha, &f), mark_run(&dha, &f));
        }
    }

    #[test]
    fn interpretive_agrees_with_two_pass() {
        let mut ab = Alphabet::new();
        let phr = parse_phr("[ε ; a ; b][b ; a ; ε]", &mut ab).unwrap();
        let compiled = CompiledPhr::compile(&phr);
        let syms: Vec<_> = ab.syms().collect();
        for h in enumerate_hedges(&syms, &[], 5) {
            let f = FlatHedge::from_hedge(&h);
            assert_eq!(
                interpretive_locate_phr(&phr, &f),
                two_pass::locate(&compiled, &f)
            );
        }
    }
}

//! Paper walkthrough: every worked example from the paper, executed.
//!
//! ```sh
//! cargo run --example paper_walkthrough
//! ```
//!
//! Reproduces, in order:
//!
//! * Section 3 — the automata `M₀` (deterministic) and `M₁`
//!   (non-deterministic) on the paper's hedges (experiment E1);
//! * Figure 1 — the product of pointed hedges;
//! * Figure 2 — decomposition into pointed base hedges;
//! * Section 5 — the `(a⟨z⟩*^z, b, a⟨z⟩*^z)*` example;
//! * Section 6 — the `select((b|x)*, (ε,a,b)(b,a,ε))` worked example and
//!   the Theorem 3 marking run.

use hedgex::core::mark_down::MarkDown;
use hedgex::ha::paper::{m0, m1};
use hedgex::hedge::{print_hedge, PointedBaseHedge};
use hedgex::prelude::*;

fn main() {
    let mut ab = Alphabet::new();

    println!("== Section 3: the deterministic automaton M0 ==");
    let auto0 = m0(&mut ab);
    let h = parse_hedge("d<p<$x> p<$y>> d<p<$x>>", &mut ab).unwrap();
    let flat = FlatHedge::from_hedge(&h);
    let states = auto0.run(&flat);
    println!("hedge: d<p<$x> p<$y>> d<p<$x>>");
    println!(
        "computation (per node, document order): {:?}",
        states
            .iter()
            .map(|&q| hedgex::ha::paper::M0_STATES[q as usize])
            .collect::<Vec<_>>()
    );
    println!(
        "ceil of computation in F = q_d* → accepted: {}",
        auto0.accepts(&h)
    );
    assert!(auto0.accepts(&h));

    println!("\n== Section 3: the non-deterministic automaton M1 ==");
    let auto1 = m1(&mut ab);
    for src in ["d<p<$x> p<$y>>", "d<p<$x $x> p<$x $x>>"] {
        let h = parse_hedge(src, &mut ab).unwrap();
        println!("{src:28} accepted: {}", auto1.accepts(&h));
    }

    println!("\n== Figure 1: product of pointed hedges ==");
    let u = PointedHedge::new(parse_hedge("a<$x> b<%η>", &mut ab).unwrap()).unwrap();
    let v = PointedHedge::new(parse_hedge("a<$x> b<c<%η> $y>", &mut ab).unwrap()).unwrap();
    let prod = u.product(&v);
    println!("u       = {}", print_hedge(u.hedge(), &ab));
    println!("v       = {}", print_hedge(v.hedge(), &ab));
    println!("u ⊕ v   = {}", print_hedge(prod.hedge(), &ab));

    println!("\n== Figure 2: decomposition into pointed base hedges ==");
    let bases = v.decompose().unwrap();
    for (i, base) in bases.iter().enumerate() {
        println!(
            "base {}: ({} ; {} ; {})",
            i + 1,
            print_hedge(&base.elder, &ab),
            ab.sym_name(base.label),
            print_hedge(&base.younger, &ab),
        );
    }
    let recomposed = PointedBaseHedge::compose(&bases).unwrap();
    assert_eq!(recomposed, v);
    println!("recomposition equals v ✓");

    println!("\n== Section 5: (a<z>*^z, b, a<z>*^z)* ==");
    let phr = parse_phr("[a<%z>*^z ; b ; a<%z>*^z]*", &mut ab).unwrap();
    let compiled = CompiledPhr::compile(&phr);
    for src in ["a b<a b<%η> a<a>> a", "a<b<%η>>"] {
        let ph = PointedHedge::new(parse_hedge(src, &mut ab).unwrap()).unwrap();
        println!("{src:24} matches: {}", phr.matches_pointed(&ph));
    }
    let doc = parse_hedge("a b<a b<b<a>> a<a>> a", &mut ab).unwrap();
    let flat = FlatHedge::from_hedge(&doc);
    println!(
        "located in 'a b<a b<b<a>> a<a>> a': {:?}",
        two_pass::locate(&compiled, &flat)
            .iter()
            .map(|&n| flat.dewey(n))
            .collect::<Vec<_>>()
    );

    println!("\n== Section 6: select((b|$x)*, [ε;a;b][b;a;ε]) ==");
    let query = SelectQuery {
        subhedge: parse_hre("(b|$x)*", &mut ab).unwrap(),
        envelope: parse_phr("[ε ; a ; b][b ; a ; ε]", &mut ab).unwrap(),
    };
    let doc = parse_hedge("b a<a<b $x> b>", &mut ab).unwrap();
    let flat = FlatHedge::from_hedge(&doc);
    let hits = query.compile().locate(&flat);
    println!("document: b a<a<b $x> b>");
    println!(
        "located: {:?} (Dewey {:?}) — the paper's 'first second-level node of the second top-level node'",
        hits,
        hits.iter().map(|&n| flat.dewey(n)).collect::<Vec<_>>()
    );
    assert_eq!(hits, vec![2]);

    println!("\n== Theorem 3: the marking run of M↓(b|$x)* ==");
    let syms: Vec<_> = ab.syms().collect();
    let md = MarkDown::build(&parse_hre("(b|$x)*", &mut ab).unwrap(), &syms);
    let marks = md.marks(&flat);
    for n in flat.preorder() {
        println!(
            "  node {n} (Dewey {:?}): content ∈ L(e1): {}",
            flat.dewey(n),
            marks[n as usize]
        );
    }
}

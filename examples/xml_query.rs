//! Querying a real XML document with an extended path expression.
//!
//! ```sh
//! cargo run --example xml_query
//! ```
//!
//! The introduction's motivating example: "locate all <figure> elements
//! whose immediately following siblings are <table> elements" — a query
//! classical path expressions *cannot* express (they see only the ancestor
//! path) but pointed hedge representations can. The result is printed as
//! XML with `hx:match="1"` on the located nodes.

use hedgex::prelude::*;

const DOC: &str = r#"
<article>
  <title>On hedges</title>
  <section>
    <title>Intro</title>
    <para>Some text.</para>
    <figure><caption>A figure, then a table</caption></figure>
    <table/>
    <figure><caption>A figure, then a paragraph</caption></figure>
    <para>More text.</para>
    <section>
      <title>Nested</title>
      <figure><caption>Nested figure, then a table</caption></figure>
      <table/>
    </section>
  </section>
</article>
"#;

fn main() {
    let mut ab = Alphabet::new();
    let xml = parse_xml(DOC).expect("well-formed XML");
    let hedge = to_hedge(&xml, &mut ab, HedgeConfig::default());
    let flat = FlatHedge::from_hedge(&hedge);
    println!("document has {} nodes\n", flat.num_nodes());

    // Universal sibling condition over the document's element names + text.
    let universal = {
        let names: Vec<String> = (0..ab.num_syms() as u32)
            .map(|i| format!("{}<%z>", ab.sym_name(hedgex::hedge::SymId(i))))
            .collect();
        format!("({}|$#text)*^z", names.join("|"))
    };

    // PHR: η's parent is figure with a table as the immediately following
    // sibling; above it, any chain of sections under an article.
    let phr_src = format!(
        "[{u} ; figure ; table<{u}> ({u})][{u} ; section ; {u}]([{u} ; section ; {u}])*[{u} ; article ; {u}]",
        u = universal
    );
    let phr = parse_phr(&phr_src, &mut ab).expect("PHR parses");

    let compiled = CompiledPhr::compile(&phr);
    let hits = two_pass::locate(&compiled, &flat);

    println!("figures immediately followed by a table:");
    for &n in &hits {
        println!("  Dewey {:?}", flat.dewey(n));
    }

    let mut marks = vec![false; flat.num_nodes()];
    for &n in &hits {
        marks[n as usize] = true;
    }
    println!("\n{}", write_xml(&flat, &ab, Some(&marks)));

    // Contrast: the ancestor-only path expression finds *all* figures under
    // sections — it cannot see the following sibling.
    let path = parse_path("article section* figure", &mut ab).unwrap();
    let path_hits = path.locate(&flat);
    println!(
        "path expression 'article section* figure' finds {} figures; the \
         sibling-sensitive query narrows that to {}.",
        path_hits.len(),
        hits.len()
    );
    assert!(hits.len() < path_hits.len());
    assert!(hits.iter().all(|h| path_hits.contains(h)));
}

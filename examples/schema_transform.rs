//! Schema transformation (Section 8): compute the output schema of a query.
//!
//! ```sh
//! cargo run --example schema_transform
//! ```
//!
//! Like relational algebra — where joining schemas (A,B) and (B,C) yields
//! schema (A,B,C) — a selection query over an XML schema yields an output
//! schema describing every possible result. This example builds a small
//! document schema, transforms it by a query, and probes the output schema
//! with candidate results.

use hedgex::core::schema::transform_select;
use hedgex::ha::{DhaBuilder, Leaf};
use hedgex::prelude::*;
use hedgex_automata::Regex;

fn main() {
    let mut ab = Alphabet::new();
    // Input schema (a hand-built DHA):
    //   top level: article*
    //   article ::= section*      section ::= (para | figure)*
    //   figure  ::= caption       para, caption ::= #text?
    let article = ab.sym("article");
    let section = ab.sym("section");
    let para = ab.sym("para");
    let figure = ab.sym("figure");
    let caption = ab.sym("caption");
    let text = ab.var("#text");
    // States: 0 article, 1 section, 2 para, 3 figure, 4 caption, 5 text, 6 sink.
    let mut b = DhaBuilder::new(7, 6);
    b.leaf(Leaf::Var(text), 5)
        .rule(article, Regex::sym(1).star(), 0)
        .rule(section, Regex::sym(2).alt(Regex::sym(3)).star(), 1)
        .rule(para, Regex::sym(5).opt(), 2)
        .rule(figure, Regex::sym(4), 3)
        .rule(caption, Regex::sym(5).opt(), 4)
        .finals(Regex::sym(0).star());
    let schema = b.build();
    println!("input schema: article* / section* / (para|figure)* / figure ::= caption");

    // Query: select figures (content = one caption) under a section.
    let universal = {
        let names: Vec<String> = ["article", "section", "para", "figure", "caption"]
            .iter()
            .map(|s| format!("{s}<%z>"))
            .collect();
        format!("({}|$#text)*^z", names.join("|"))
    };
    let e1 = parse_hre(&format!("caption<{universal}>"), &mut ab).unwrap();
    let e2 = parse_phr(
        &format!(
            "[{u} ; figure ; {u}][{u} ; section ; {u}][{u} ; article ; {u}]",
            u = universal
        ),
        &mut ab,
    )
    .unwrap();
    println!("query: select(caption<…>, figure under section under article)\n");

    let syms: Vec<_> = ab.syms().collect();
    let vars: Vec<_> = ab.vars().collect();
    let transformed = transform_select(&schema, &e1, &e2, &syms, &vars);

    println!(
        "match-identifying intersection: {} states, {} marked, {} live-marked",
        transformed.intersection.num_states(),
        transformed.marked.iter().filter(|&&m| m).count(),
        transformed.live_marked.iter().filter(|&&m| m).count(),
    );

    // Probe the output schema.
    println!("\noutput schema membership:");
    for (desc, src, expect) in [
        ("a figure with empty caption", "figure<caption>", true),
        (
            "a figure with caption text",
            "figure<caption<$#text>>",
            true,
        ),
        ("a bare caption", "caption", false),
        ("a section", "section", false),
        (
            "a figure with two captions",
            "figure<caption caption>",
            false,
        ),
        ("a para", "para<$#text>", false),
    ] {
        let t = parse_hedge(src, &mut ab).unwrap();
        let got = transformed.output.accepts(&t);
        println!("  {desc:32} {src:28} → {got}");
        assert_eq!(got, expect, "{desc}");
    }

    // Cross-check against brute force on a concrete document.
    let doc = parse_hedge(
        "article<section<para figure<caption<$#text>> para> section<figure<caption>>>",
        &mut ab,
    )
    .unwrap();
    let flat = FlatHedge::from_hedge(&doc);
    assert!(schema.accepts_flat(&flat));
    let q = SelectQuery {
        subhedge: e1,
        envelope: e2,
    };
    let hits = q.compile().locate(&flat);
    println!("\nconcrete document: {} figures located", hits.len());
    for &n in &hits {
        let subtree = Hedge::tree(flat.to_tree(n));
        assert!(transformed.output.accepts(&subtree));
    }
    println!("all located subtrees are accepted by the output schema ✓");
}

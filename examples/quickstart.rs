//! Quickstart: compile and run a selection query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Walks through the paper's Section 6 example end-to-end: a query whose
//! subhedge condition is the hedge regular expression `(b|x)*` and whose
//! envelope condition is the pointed hedge representation
//! `(ε, a, b)(b, a, ε)` — "an `a` whose next sibling is a `b`, inside an
//! `a` whose previous sibling is a `b`".

use hedgex::prelude::*;

fn main() {
    let mut ab = Alphabet::new();

    // 1. A document, in the compact hedge syntax: b a⟨a⟨b x⟩ b⟩.
    let doc = parse_hedge("b a<a<b $x> b>", &mut ab).expect("document parses");
    let flat = FlatHedge::from_hedge(&doc);
    println!("document: b a<a<b $x> b>   ({} nodes)", flat.num_nodes());

    // 2. The query select(e1, e2).
    let query = SelectQuery {
        subhedge: parse_hre("(b|$x)*", &mut ab).expect("e1 parses"),
        envelope: parse_phr("[ε ; a ; b][b ; a ; ε]", &mut ab).expect("e2 parses"),
    };
    println!("query:    select( (b|$x)* , [ε;a;b][b;a;ε] )");

    // 3. Compile once (exponential in the query, per Section 7)…
    let compiled = query.compile();

    // 4. …then locate in linear time per document.
    let hits = compiled.locate(&flat);
    println!("located {} node(s):", hits.len());
    for n in &hits {
        println!("  node {} at Dewey address {:?}", n, flat.dewey(*n));
    }

    // 5. The declarative evaluator (Definition 22, quadratic) agrees.
    assert_eq!(hits, query.locate_naive(&flat));
    println!("naive evaluator agrees ✓");
}

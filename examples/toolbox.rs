//! The algebraic toolbox: language operations, equivalence decisions,
//! minimization, and the Section 9 unambiguity check.
//!
//! ```sh
//! cargo run --example toolbox
//! ```
//!
//! Everything here goes beyond evaluation: hedge languages as first-class
//! objects you can combine, compare, and analyze — the "generalize useful
//! techniques developed for path expressions" direction the paper's
//! conclusion calls for.

use hedgex::core::ambiguity::{hre_is_ambiguous, nha_is_ambiguous};
use hedgex::core::mark_down::compile_to_dha;
use hedgex::ha::minimize::minimize_dha;
use hedgex::ha::ops::{complement, difference, equivalent, included, intersection};
use hedgex::prelude::*;

fn main() {
    let mut ab = Alphabet::new();

    println!("== Language algebra on hedge automata ==");
    // L1: sequences of a⟨b*⟩; L2: hedges with at most 2 top-level trees.
    let l1 = compile_to_dha(&parse_hre("a<b*>*", &mut ab).unwrap());
    let l2 = compile_to_dha(
        &parse_hre(
            "(a<(a<%z>|b<%z>)*^z>|b<(a<%z>|b<%z>)*^z>)? \
                                        (a<(a<%z>|b<%z>)*^z>|b<(a<%z>|b<%z>)*^z>)?",
            &mut ab,
        )
        .unwrap(),
    );
    let both = intersection(&l1, &l2);
    let h = parse_hedge("a<b> a<b b>", &mut ab).unwrap();
    println!("a<b> a<b b> ∈ L1∩L2: {}", both.accepts(&h));
    let h3 = parse_hedge("a a a", &mut ab).unwrap();
    println!(
        "a a a       ∈ L1∩L2: {} (three roots breaks L2)",
        both.accepts(&h3)
    );

    // Inclusion with counterexamples.
    match included(&both, &l1) {
        Ok(()) => println!("L1∩L2 ⊆ L1 ✓"),
        Err(w) => println!("unexpected counterexample: {w:?}"),
    }
    match included(&l1, &both) {
        Ok(()) => println!("L1 ⊆ L1∩L2 — should not hold!"),
        Err(w) => println!(
            "L1 ⊄ L1∩L2, witness: {}",
            hedgex::hedge::print_hedge(&w, &ab)
        ),
    }

    // De Morgan, decided exactly.
    let lhs = complement(&intersection(&l1, &l2));
    let rhs = hedgex::ha::ops::union(&complement(&l1), &complement(&l2));
    println!("¬(L1∩L2) = ¬L1 ∪ ¬L2: {}", equivalent(&lhs, &rhs).is_ok());
    println!(
        "L1 \\ L1 is empty: {}",
        hedgex::ha::analysis::is_empty(&difference(&l1, &l1))
    );

    println!("\n== Minimization ==");
    // A hand-built automaton with interchangeable states (two variables
    // playing identical roles).
    let m = {
        use hedgex::ha::{DhaBuilder, Leaf};
        use hedgex_automata::Regex;
        let a = ab.sym("a");
        let x = ab.var("x");
        let y = ab.var("y");
        let mut d = DhaBuilder::new(4, 3);
        d.leaf(Leaf::Var(x), 0)
            .leaf(Leaf::Var(y), 1)
            .rule(a, Regex::sym(0).alt(Regex::sym(1)).star(), 2)
            .finals(Regex::sym(2).star());
        d.build()
    };
    let (min, _) = minimize_dha(&m);
    println!(
        "redundant automaton: {} states → {} states (language preserved: {})",
        m.num_states(),
        min.num_states(),
        equivalent(&m, &min).is_ok()
    );

    println!("\n== Unambiguity (Section 9 future work) ==");
    for src in ["a b c", "(a|b)*", "a? a?", "a* a*", "a<b|b c?>", "a<%z>*^z"] {
        let e = hedgex::core::parse_hre(src, &mut ab).unwrap();
        println!(
            "  {:12} {}",
            src,
            if hre_is_ambiguous(&e) {
                "AMBIGUOUS — unsafe for variable binding"
            } else {
                "unambiguous — variables may be introduced"
            }
        );
    }

    // Automaton-level: the paper's M1 guesses q_p1/q_p2 for p⟨x x⟩, yet it
    // is NOT computation-ambiguous: α(d, ·) only accepts q_p1 q_p2*, so for
    // every accepted hedge exactly one guess combination survives to an
    // accepting computation.
    let m1 = hedgex::ha::paper::m1(&mut ab);
    println!(
        "\npaper's M1 is computation-ambiguous: {} (the d-rule disambiguates the guesses)",
        nha_is_ambiguous(&m1)
    );
    assert!(!nha_is_ambiguous(&m1));
}

//! Mini-experiment: the three evaluators on a synthetic DocBook corpus.
//!
//! ```sh
//! cargo run --release --example docbook_figures [nodes]
//! ```
//!
//! Generates a DocBook-flavoured document (default ~20 000 nodes), runs the
//! introduction's figure-before-table query with (1) Algorithm 1 (linear),
//! (2) the quadratic per-node baseline, and (3) the ancestor-only path
//! expression, and prints a result/latency table — a one-shot preview of
//! benchmark experiments E5 and E8 (see EXPERIMENTS.md).

use std::time::Instant;

use hedgex::baseline::quadratic_locate_phr;
use hedgex::prelude::*;
use hedgex_bench::{doc_workload, figure_before_table_phr, figure_path};

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let mut w = doc_workload(nodes, 42);
    println!("document: {} nodes (seeded DocBook corpus)", w.nodes);

    let phr = figure_before_table_phr(&mut w.ab);
    let t = Instant::now();
    let compiled = CompiledPhr::compile(&phr);
    println!(
        "PHR compiled in {:?} (M: {} states, ≡: {} classes)",
        t.elapsed(),
        compiled.m.num_states(),
        compiled.classes.num_classes()
    );

    let t = Instant::now();
    let fast = two_pass::locate(&compiled, &w.doc);
    let fast_t = t.elapsed();

    let t = Instant::now();
    let slow = quadratic_locate_phr(&compiled, &w.doc);
    let slow_t = t.elapsed();
    assert_eq!(fast, slow);

    let path = figure_path(&mut w.ab);
    let t = Instant::now();
    let path_hits = path.locate(&w.doc);
    let path_t = t.elapsed();

    println!("\n{:<38} {:>9} {:>14}", "evaluator", "matches", "latency");
    println!(
        "{:<38} {:>9} {:>14?}",
        "Algorithm 1 (two-pass, linear)",
        fast.len(),
        fast_t
    );
    println!(
        "{:<38} {:>9} {:>14?}",
        "per-node baseline (quadratic)",
        slow.len(),
        slow_t
    );
    println!(
        "{:<38} {:>9} {:>14?}",
        "path expr article/section*/figure",
        path_hits.len(),
        path_t
    );
    println!(
        "\nspeedup of Algorithm 1 over the quadratic baseline: {:.1}×",
        slow_t.as_secs_f64() / fast_t.as_secs_f64()
    );
}

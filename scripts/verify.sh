#!/usr/bin/env bash
# Tier-1 verification gate: hermetic build + tests + formatting.
#
# The workspace has zero external dependencies, so everything must pass
# with --offline and an empty registry cache. Run from the repo root:
#
#   scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== cargo fmt --check =="
cargo fmt --check

echo "verify: OK"

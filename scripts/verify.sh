#!/usr/bin/env bash
# Tier-1 verification gate: hermetic build + tests + formatting.
#
# The workspace has zero external dependencies, so everything must pass
# with --offline and an empty registry cache. Run from the repo root:
#
#   scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== cargo build --offline --no-default-features =="
# The obs instrumentation must compile out cleanly across the workspace.
cargo build --offline --no-default-features

echo "== cargo test -q --offline --no-default-features (pinned two-pass) =="
# Same match sets with instrumentation compiled out: observe, never perturb.
cargo test -q --offline --no-default-features -p hedgex --test two_pass_pinned

echo "== cargo test -q --offline --no-default-features (parallel) =="
# The pool must stay deterministic with the obs counters compiled out.
cargo test -q --offline --no-default-features -p hedgex --test parallel

echo "== cargo test -q --offline --no-default-features (analysis properties) =="
# Analysis verdicts and pruning equivalence must not depend on instrumentation.
cargo test -q --offline --no-default-features -p hedgex --test analysis_props

echo "== cargo test -q --offline --no-default-features (streaming differential) =="
# Streamed == materialized must hold with the obs counters compiled out.
cargo test -q --offline --no-default-features -p hedgex --test stream_props

echo "== cargo test -q --offline --no-default-features (parser fuzz) =="
# Event parser vs tree parser parity is independent of instrumentation.
cargo test -q --offline --no-default-features -p hedgex --test xml_stream_fuzz

echo "== cargo test -q --offline --no-default-features (mode consistency) =="
# count == |locate| and exists == (locate ≠ ∅) across every engine must
# hold with the obs counters compiled out.
cargo test -q --offline --no-default-features -p hedgex --test mode_props

echo "== cargo test -q --offline --no-default-features (store properties) =="
# Round trips and pruning soundness must hold with obs compiled out.
cargo test -q --offline --no-default-features -p hedgex --test store_props

echo "== cargo test -q --offline --no-default-features (store fuzz) =="
# The loader's typed, positioned errors are independent of instrumentation.
cargo test -q --offline --no-default-features -p hedgex --test store_fuzz

echo "== cargo clippy --offline --all-targets -- -D warnings =="
cargo clippy -q --offline --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "== forbid(unsafe_code) in every crate root =="
for f in crates/*/src/lib.rs; do
  grep -q '^#!\[forbid(unsafe_code)\]$' "$f" \
    || { echo "missing #![forbid(unsafe_code)] in $f"; exit 1; }
done

echo "== no debug/stub macros in crate sources =="
# dbg!/todo!/unimplemented! must never ship; tests may use them, sources not.
if grep -rnE '(dbg!\(|todo!\(|unimplemented!\()' crates/*/src; then
  echo "forbidden macro found in crate sources"; exit 1
fi

echo "== E6 warm-throughput bench (smoke mode: 1 sample) =="
HEDGEX_BENCH_SMOKE=1 cargo bench -q --offline -p hedgex-bench --bench warm

echo "== E7 parallel-scaling bench (smoke mode: 1 sample) =="
HEDGEX_BENCH_SMOKE=1 cargo bench -q --offline -p hedgex-bench --bench parallel

echo "== E9 streaming bench (smoke mode: 1 sample) =="
HEDGEX_BENCH_SMOKE=1 cargo bench -q --offline -p hedgex-bench --bench streaming

echo "== E10 mode-ablation bench (smoke mode: 1 sample) =="
HEDGEX_BENCH_SMOKE=1 cargo bench -q --offline -p hedgex-bench --bench mode_ablation

echo "== E11 store bench (smoke mode: 1 sample) =="
# Asserts indexed == warm answers and the >= 2x selective-query speedup.
HEDGEX_BENCH_SMOKE=1 cargo bench -q --offline -p hedgex-bench --bench store

echo "== bench_compare: committed baseline schema =="
# Every committed BENCH_*.json must parse and carry the report schema the
# sentinel compares on (ids, median/min/max, sample counts).
check_args=()
for f in BENCH_*.json; do
  [ "$f" = "BENCH_TRAJECTORY.json" ] && continue
  check_args+=(--check "$f")
done
cargo run -q --offline --release -p hedgex-bench --bin bench_compare -- "${check_args[@]}"

echo "== bench_compare: self-comparison is regression-free =="
# Comparing the committed baselines against themselves must report zero
# regressions and exit 0; this exercises the full comparison path without
# the cross-machine noise a live smoke run would inject.
cargo run -q --offline --release -p hedgex-bench --bin bench_compare -- \
  --baseline-dir . --candidate-dir .

echo "== bench_compare: trajectory covers every committed report =="
# The audit history must not fall behind the baselines: every committed
# BENCH_*.json group has to appear in the latest BENCH_TRAJECTORY.json row.
cargo run -q --offline --release -p hedgex-bench --bin bench_compare -- \
  --trajectory-covers BENCH_TRAJECTORY.json --baseline-dir .

echo "== bench_compare: sentinel self-test (must detect a 3x slowdown) =="
# The self-test plants a synthetic 3x slowdown and exits non-zero iff the
# sentinel catches it; a blind sentinel exits 0 and fails this gate.
if cargo run -q --offline --release -p hedgex-bench --bin bench_compare -- --self-test; then
  echo "bench_compare self-test failed to flag the planted regression"; exit 1
fi

echo "verify: OK"
